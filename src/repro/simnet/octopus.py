"""The Octopus testbed topology.

Builds the simulated counterpart of the paper's hardware (§5): a cluster
of 8-way SMP nodes behind ~50 MB/s effective egress NICs, and end devices
hanging off the cluster with their own uplink and display-ingest
capacities.  The workload module composes these pieces into the §5.2
application pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.simnet.engine import Pipe, Resource, Simulator
from repro.simnet.params import DEFAULT_PARAMS, TestbedParams


@dataclass
class ClusterNode:
    """One SMP node: CPUs plus a shared egress NIC."""

    name: str
    cpus: Resource
    egress: Pipe


@dataclass
class EndDevice:
    """One tentacle: a camera uplink and a display ingest path."""

    name: str
    uplink: Pipe
    display_stream: Pipe


@dataclass
class OctopusTestbed:
    """A built topology: simulator, cluster nodes, end devices."""

    sim: Simulator
    params: TestbedParams
    nodes: List[ClusterNode] = field(default_factory=list)
    devices: Dict[str, EndDevice] = field(default_factory=dict)

    @staticmethod
    def build(num_devices: int,
              params: TestbedParams = DEFAULT_PARAMS) -> "OctopusTestbed":
        """Create the testbed: the full cluster plus *num_devices* end
        devices, each with its own uplink and display-ingest pipes."""
        if num_devices < 0:
            raise ValueError(f"negative device count {num_devices}")
        sim = Simulator()
        testbed = OctopusTestbed(sim=sim, params=params)
        app = params.app
        for index in range(params.cluster_nodes):
            testbed.nodes.append(ClusterNode(
                name=f"node-{index}",
                cpus=Resource(sim, params.cpus_per_node,
                              name=f"node-{index}-cpus"),
                egress=Pipe(sim, app.egress_bandwidth,
                            name=f"node-{index}-egress"),
            ))
        for index in range(num_devices):
            name = f"device-{index}"
            testbed.devices[name] = EndDevice(
                name=name,
                uplink=Pipe(sim, app.uplink_bandwidth,
                            name=f"{name}-uplink"),
                display_stream=Pipe(sim, app.stream_bandwidth,
                                    name=f"{name}-display"),
            )
        return testbed

    @property
    def mixer_node(self) -> ClusterNode:
        """The node hosting the mixer's address space ``N_M`` — "all the
        threads of the mixer run in one node (an 8-way SMP)" (§5.2)."""
        if not self.nodes:
            raise ValueError("testbed has no cluster nodes")
        return self.nodes[0]

    def device(self, index: int) -> EndDevice:
        """The *index*-th end device."""
        return self.devices[f"device-{index}"]

    # -- modelling helpers -------------------------------------------------------

    def egress_send_bytes(self, composite_size: int) -> float:
        """Wire-equivalent bytes for one composite send on the mixer's
        egress NIC: payload plus the per-send fixed overhead expressed in
        bytes at egress bandwidth."""
        app = self.params.app
        return composite_size + app.egress_send_overhead_s \
            * app.egress_bandwidth

    def stream_recv_bytes(self, composite_size: int) -> float:
        """Wire-equivalent bytes for one composite arriving at a display
        stream: payload plus the per-frame fixed ingest cost."""
        app = self.params.app
        return composite_size + app.stream_overhead_s \
            * app.stream_bandwidth
