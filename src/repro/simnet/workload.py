"""The §5.2 video-conferencing workload on the simulated testbed.

Three versions, exactly as the paper builds them:

* **socket** — hand-written TCP version, single-threaded mixer;
* **single** — D-Stampede channels, single-threaded mixer;
* **multi** — D-Stampede channels, one mixer thread per client on the
  8-way SMP.

"The producer thread in the client program reads a 'virtual' camera (a
memory buffer) and sends it to the server program continuously ... This
structure allows us to stress the communication infrastructure of
D-Stampede at the maximum possible rate" — so producers here are never
the bottleneck, and the measured quantity is the sustained frame rate at
the slowest display, as in Figures 14/15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.simnet.engine import Store
from repro.simnet.octopus import OctopusTestbed
from repro.simnet.params import DEFAULT_PARAMS, TestbedParams
from repro.util.stats import RateMeter


@dataclass(frozen=True)
class VideoConfResult:
    """Outcome of one simulated run."""

    version: str
    clients: int
    image_size: int
    #: Sustained frames/second at the slowest display.
    fps: float
    #: Frames each display received.
    frames: int
    #: K²·S·F — the delivered-bandwidth figure of Table 1 (bytes/s).
    delivered_bandwidth: float
    #: Simulated seconds the run took.
    duration: float

    @property
    def meets_threshold(self) -> bool:
        """The paper's 10 f/s publication floor."""
        return self.fps >= DEFAULT_PARAMS.app.fps_floor


def simulate_videoconf(version: str, clients: int, image_size: int,
                       frames: int = 80, warmup: int = 10,
                       params: TestbedParams = DEFAULT_PARAMS
                       ) -> VideoConfResult:
    """Run one configuration and return its sustained frame rate.

    Parameters
    ----------
    version:
        ``"socket"``, ``"single"`` or ``"multi"``.
    clients:
        Number of participants K; each display receives composites of
        ``K * image_size`` bytes.
    image_size:
        Per-client camera image size S in bytes.
    frames:
        Frames to deliver per display (after which the run stops).
    warmup:
        Leading frames excluded from the sustained-rate window.
    """
    if version not in ("socket", "single", "multi"):
        raise ValueError(f"unknown version {version!r}")
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    if image_size <= 0:
        raise ValueError(f"image size must be positive, got {image_size}")
    if frames <= warmup + 1:
        raise ValueError("need more frames than warmup")

    testbed = OctopusTestbed.build(clients, params=params)
    meters = [RateMeter() for _ in range(clients)]
    if version == "multi":
        _build_multithreaded(testbed, clients, image_size, frames, meters)
    else:
        _build_single_threaded(testbed, clients, image_size, frames,
                               meters, socket_version=(version == "socket"))
    duration = testbed.sim.run()

    fps = min(meter.rate(skip_warmup=warmup) for meter in meters)
    composite = clients * image_size
    return VideoConfResult(
        version=version,
        clients=clients,
        image_size=image_size,
        fps=fps,
        frames=min(meter.count for meter in meters),
        delivered_bandwidth=clients * composite * fps,
        duration=duration,
    )


# ---------------------------------------------------------------------------
# Multi-threaded mixer (Figure 15)
# ---------------------------------------------------------------------------


def _build_multithreaded(testbed: OctopusTestbed, clients: int,
                         image_size: int, frames: int,
                         meters: List[RateMeter]) -> None:
    """Pipelined stages: compose (8 CPUs) -> egress send (shared NIC) ->
    display ingest (per-client stream), connected by bounded stores so
    back-pressure propagates like the bounded channels of the real
    runtime."""
    sim = testbed.sim
    app = testbed.params.app
    mixer = testbed.mixer_node
    composite = clients * image_size
    window = app.stage_window

    send_queues: List[Store] = [Store(sim, capacity=window)
                                for _ in range(clients)]
    arrive_queues: List[Store] = [Store(sim, capacity=window)
                                  for _ in range(clients)]

    def composer():
        compose_time = composite * app.compose_per_byte_s
        for ts in range(frames):
            yield mixer.cpus.use(compose_time)
            for q in send_queues:
                yield q.put(ts)

    def egress_sender(k: int):
        for _ in range(frames):
            ts = yield send_queues[k].get()
            yield mixer.egress.transfer(
                testbed.egress_send_bytes(composite)
            )
            yield arrive_queues[k].put(ts)

    def display(k: int):
        stream = testbed.device(k).display_stream
        for _ in range(frames):
            yield arrive_queues[k].get()
            yield stream.transfer(testbed.stream_recv_bytes(composite))
            meters[k].record(sim.now)

    sim.process(composer(), name="mixer-composer")
    for k in range(clients):
        sim.process(egress_sender(k), name=f"egress-{k}")
        sim.process(display(k), name=f"display-{k}")


# ---------------------------------------------------------------------------
# Single-threaded mixer (Figure 14): socket and channel versions
# ---------------------------------------------------------------------------


def _build_single_threaded(testbed: OctopusTestbed, clients: int,
                           image_size: int, frames: int,
                           meters: List[RateMeter],
                           socket_version: bool) -> None:
    """One mixer thread does everything serially: obtain each client's
    image, build the composite, then write it out to each client one
    after the other — "the mixer (a single thread) obtains images from
    each client one after the other, generates the composite, and sends
    it to the clients one after the other"."""
    sim = testbed.sim
    app = testbed.params.app
    mixer = testbed.mixer_node
    composite = clients * image_size
    per_client = (app.single_per_client_socket_s if socket_version
                  else app.single_per_client_s)
    write_bandwidth = app.single_write_bandwidth

    arrive_queues: List[Store] = [Store(sim, capacity=app.stage_window)
                                  for _ in range(clients)]
    # The single-threaded writer cannot keep the NIC saturated; model its
    # effective serialized throughput with a dedicated pipe.
    from repro.simnet.engine import Pipe

    write_pipe = Pipe(sim, write_bandwidth, name="single-writer")

    def mixer_loop():
        for ts in range(frames):
            for _k in range(clients):
                # get + composite share for one client's image (serial).
                yield mixer.cpus.use(per_client)
            for q in arrive_queues:
                # send the composite to one client after the other.
                yield write_pipe.transfer(composite)
                yield q.put(ts)

    def display(k: int):
        stream = testbed.device(k).display_stream
        for _ in range(frames):
            yield arrive_queues[k].get()
            yield stream.transfer(testbed.stream_recv_bytes(composite))
            meters[k].record(sim.now)

    sim.process(mixer_loop(), name="mixer-single")
    for k in range(clients):
        sim.process(display(k), name=f"display-{k}")


# ---------------------------------------------------------------------------
# Sweeps for the figures and the table
# ---------------------------------------------------------------------------

#: The per-client image sizes of Figures 14/15 and Table 1 (bytes).
PAPER_IMAGE_SIZES = [74_000, 89_000, 125_000, 145_000, 190_000]

#: Fig. 14 sweeps image size at 2 clients for the single-threaded
#: versions; it also reports 110 KB explicitly ("for a data size of
#: 110 kb, they both deliver 18 frames/second").
FIG14_IMAGE_SIZES = [74_000, 89_000, 106_000, 110_000, 125_000,
                     145_000, 166_000, 190_000]


def figure14_sweep(frames: int = 60,
                   params: TestbedParams = DEFAULT_PARAMS
                   ) -> Dict[str, List[VideoConfResult]]:
    """Socket vs single-threaded-channel versions, 2 clients."""
    return {
        version: [
            simulate_videoconf(version, clients=2, image_size=size,
                               frames=frames, params=params)
            for size in FIG14_IMAGE_SIZES
        ]
        for version in ("socket", "single")
    }


def figure15_sweep(max_clients: int = 7, frames: int = 60,
                   params: TestbedParams = DEFAULT_PARAMS
                   ) -> Dict[int, List[VideoConfResult]]:
    """Multi-threaded mixer: clients 2..max for each paper image size.

    Returns ``{image_size: [result per client count]}`` including the
    sub-threshold points (the caller applies the 10 f/s floor, as the
    paper does when plotting).
    """
    return {
        size: [
            simulate_videoconf("multi", clients=k, image_size=size,
                               frames=frames, params=params)
            for k in range(2, max_clients + 1)
        ]
        for size in PAPER_IMAGE_SIZES
    }


def table1(results: Dict[int, List[VideoConfResult]]
           ) -> Dict[int, List[float]]:
    """Delivered bandwidth K²·S·F (MB/s) per image size and client count,
    derived from the Figure 15 measurements exactly as the paper derives
    Table 1."""
    return {
        size: [r.delivered_bandwidth / 1e6 for r in row]
        for size, row in results.items()
    }
