"""Discrete-event simulation of the paper's 2002 testbed.

The original evaluation ran on "a cluster consisting of 17 eight-way SMPs
interconnected by Gigabit Ethernet.  Each processor is a 550MHz Pentium
III Xeon" (§5).  That hardware no longer exists; this package substitutes
a discrete-event model so the benchmark harness can regenerate every data
figure (11–15) and Table 1 with the paper's *shape* — orderings,
crossovers, saturation points — rather than its absolute microseconds.

Pieces:

* :mod:`.engine` — the event loop: processes, timeouts, FCFS resources,
  serialized links;
* :mod:`.params` — every calibration constant, each traced to the paper
  sentence it anchors;
* :mod:`.protocols` — latency models for raw UDP, TCP (with congestion
  spikes) and CLF exchanges;
* :mod:`.stampede_model` — end-to-end path models for the micro
  experiments (Exp. 1 and configs 1–3 of Exps. 2/3);
* :mod:`.octopus` — the testbed topology (cluster nodes, end devices,
  shared egress links);
* :mod:`.workload` — the video-conferencing application of §5.2 as a
  simulated pipeline (socket / single-threaded / multi-threaded mixer).
"""

from repro.simnet.engine import Event, Pipe, Process, Resource, Simulator
from repro.simnet.params import TestbedParams
from repro.simnet.octopus import OctopusTestbed

__all__ = [
    "Event",
    "OctopusTestbed",
    "Pipe",
    "Process",
    "Resource",
    "Simulator",
    "TestbedParams",
]
