"""A minimal process-oriented discrete-event engine.

Three primitives cover everything the testbed model needs:

* :class:`Simulator` — the event loop (a time-ordered heap of callbacks);
* :class:`Process` — a generator-based coroutine; ``yield`` an
  :class:`Event` to suspend until it fires (``sim.timeout``, resource
  service completion, link delivery);
* :class:`Resource` / :class:`Pipe` — contention: an N-server FCFS queue
  (CPUs) and a serialized link with bandwidth and latency (NICs).

The engine is deterministic: ties in time break by schedule order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimTimeError, SimulationError


class Event:
    """Something that will happen at a simulated instant.

    Callbacks added before the event fires run at fire time; a callback
    added to an already-fired event (a ``Store`` accepted a put without
    blocking, say) runs on the next loop turn at the current time, so a
    process can always safely ``yield`` any event.
    """

    __slots__ = ("sim", "fired", "value", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback* when the event fires (or next turn if it already has)."""
        if self.fired:
            relay = self.sim.timeout(0.0, self.value)
            relay._callbacks.append(lambda _ev: callback(self))
            return
        self._callbacks.append(callback)

    def fire(self, value: Any = None) -> None:
        """Mark the event occurred and run its callbacks."""
        if self.fired:
            raise SimulationError("event fired twice")
        self.fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Process:
    """A generator coroutine driven by the simulator.

    The generator yields :class:`Event` objects; each ``yield`` suspends
    the process until the event fires, and the yield expression evaluates
    to the event's value.  When the generator returns, the process's
    :attr:`completed` event fires with its return value.
    """

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self.completed = Event(sim)
        self._step(None)

    def _step(self, value: Any) -> None:
        try:
            event = self._generator.send(value)
        except StopIteration as stop:
            self.completed.fire(stop.value)
            return
        if not isinstance(event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(event).__name__}, "
                f"expected Event"
            )
        event.add_callback(lambda ev: self._step(ev.value))


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Event, Any]] = []
        self._tiebreak = itertools.count()
        self.events_processed = 0

    # -- scheduling -----------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event firing *delay* seconds from now."""
        if delay < 0:
            raise SimTimeError(f"negative delay {delay}")
        event = Event(self)
        heapq.heappush(
            self._heap, (self.now + delay, next(self._tiebreak), event,
                         value)
        )
        return event

    def at(self, time: float, value: Any = None) -> Event:
        """An event firing at absolute simulated *time*."""
        if time < self.now:
            raise SimTimeError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        return self.timeout(time - self.now, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start a process coroutine."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> Event:
        """An event firing when the first of *events* fires."""
        combined = Event(self)

        def on_first(ev: Event) -> None:
            if not combined.fired:
                combined.fire(ev.value)

        for event in events:
            event.add_callback(on_first)
        return combined

    def all_of(self, events: List[Event]) -> Event:
        """An event firing when every one of *events* has fired, with the
        list of their values."""
        combined = Event(self)
        remaining = [len(events)]
        if not events:
            # Fire on the next loop turn to keep semantics uniform.
            return self.timeout(0.0, [])

        def on_each(_ev: Event) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.fire([e.value for e in events])

        for event in events:
            event.add_callback(on_each)
        return combined

    # -- running ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap empties or *until* is reached.

        Returns the simulation time at stop.
        """
        while self._heap:
            time, _tie, event, value = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if time < self.now:  # pragma: no cover - heap invariant
                raise SimTimeError("time ran backwards")
            self.now = time
            self.events_processed += 1
            event.fire(value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_fired(self, event: Event,
                        limit: float = 1e9) -> Any:
        """Run until *event* fires; returns its value.

        :raises SimulationError: the event never fired before the heap
            drained or *limit* simulated seconds elapsed (deadlock or
            starvation in the model).
        """
        while not event.fired:
            if not self._heap:
                raise SimulationError(
                    "event never fired: simulation deadlocked"
                )
            if self.now > limit:
                raise SimulationError(f"simulation passed limit {limit}s")
            time, _tie, pending, value = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            pending.fire(value)
        return event.value


class Store:
    """A bounded FIFO buffer connecting pipeline stages.

    ``put`` returns an event firing once the item is accepted (immediately
    if a slot is free, else when a consumer drains one — back-pressure);
    ``get`` returns an event firing with the next item.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "store") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: List[Any] = []
        self._waiting_puts: List[Tuple[Event, Any]] = []
        self._waiting_gets: List[Event] = []

    def put(self, item: Any) -> Event:
        """Offer *item*; the event fires when a slot accepts it."""
        event = Event(self.sim)
        if self._waiting_gets:
            getter = self._waiting_gets.pop(0)
            getter.fire(item)
            event.fire(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.fire(None)
        else:
            self._waiting_puts.append((event, item))
        return event

    def get(self) -> Event:
        """Take the next item; the event fires with it."""
        event = Event(self.sim)
        if self._items:
            item = self._items.pop(0)
            if self._waiting_puts:
                put_event, queued = self._waiting_puts.pop(0)
                self._items.append(queued)
                put_event.fire(None)
            event.fire(item)
        else:
            self._waiting_gets.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Resource:
    """An N-server FCFS service centre (e.g. the CPUs of one SMP node).

    ``use(duration)`` returns an event that fires when a server has both
    become available *and* held the job for *duration* seconds.
    """

    def __init__(self, sim: Simulator, capacity: int,
                 name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: Next-free times, one per server.
        self._free_at = [0.0] * capacity
        self.jobs_served = 0
        self.busy_time = 0.0

    def use(self, duration: float) -> Event:
        """Occupy the earliest-available server for *duration*."""
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        index = min(range(self.capacity), key=lambda i: self._free_at[i])
        start = max(self.sim.now, self._free_at[index])
        finish = start + duration
        self._free_at[index] = finish
        self.jobs_served += 1
        self.busy_time += duration
        return self.sim.at(finish)

    def utilisation(self, elapsed: float) -> float:
        """Aggregate busy fraction over *elapsed* seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)


class Pipe:
    """A serialized link: bandwidth + propagation latency.

    Transfers queue behind each other (a NIC sends one frame at a time);
    delivery happens one latency after the last byte leaves.  This is the
    mechanism behind the egress saturation of Table 1.
    """

    def __init__(self, sim: Simulator, bandwidth: float,
                 latency: float = 0.0, name: str = "pipe") -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._free_at = 0.0
        self.bytes_sent = 0
        self.transfers = 0

    def transfer(self, size: float) -> Event:
        """Deliver *size* bytes; the returned event fires at delivery."""
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        start = max(self.sim.now, self._free_at)
        done_sending = start + size / self.bandwidth
        self._free_at = done_sending
        self.bytes_sent += size
        self.transfers += 1
        return self.sim.at(done_sending + self.latency)

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued work ahead of a transfer issued now."""
        return max(0.0, self._free_at - self.sim.now)

    def delivered_bandwidth(self, elapsed: float) -> float:
        """Average delivered bytes/second over *elapsed* seconds."""
        if elapsed <= 0:
            return 0.0
        return self.bytes_sent / elapsed
