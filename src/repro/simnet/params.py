"""Calibration constants for the testbed model.

Every constant is anchored to a number or claim in §5 of the paper.  The
benchmarks assert the *claims* (orderings, gaps, crossovers, saturation),
not the constants, so refining a constant against better data does not
invalidate the harness.

Anchors used (paper §5):

* Exp. 1 (Fig. 11): D-Stampede over CLF adds ~700 µs at 10 KB and
  ~1200 µs at 60 KB over raw UDP; "less than 2X compared to UDP";
  vs TCP the gap "starts from around 700 µs at 10 KB and ... falls to
  400 µs at 60 KB", worst case "within 1.5X"; TCP shows congestion
  spikes.
* Exp. 2 (Fig. 12): client-to-cluster TCP = 2500 µs at 55 KB;
  D-Stampede C client config 1 = 3300 µs, config 2 ≈ 5000 µs,
  config 3 ≈ 6100 µs at 55 KB.
* Exp. 3 (Fig. 13): Java client config 1 ≈ 11000 µs, config 2 ≈
  12600 µs, config 3 ≈ 21700 µs at 55 KB; Java TCP baseline similar to
  the C TCP baseline.
* Result 1: at 35 KB, intra-cluster < C client < Java client
  (2580 / 3200 / 10700 µs — we reproduce the ordering and the ~1.25x and
  ~3.3x ratios, not the absolute microseconds).
* §5.2 (Figs. 14/15, Table 1): multi-threaded mixer ~40 f/s at 74 KB /
  2 clients vs ~20 f/s single-threaded; ~30 f/s at 3 clients / 74 KB;
  ~34 f/s at 89 KB and ~27 f/s at 125 KB (2 clients); single-threaded
  socket and channel versions both ~18 f/s at 110 KB; sustained rate
  falls below 10 f/s when required egress bandwidth K²SF approaches
  the ~50 MB/s node limit (at 5 clients for 190 KB images, ~7 clients
  for smaller ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MicroParams:
    """Latency-model constants for the micro experiments (µs and bytes)."""

    # --- raw UDP exchange (Exp. 1 baseline) ---
    udp_fixed_us: float = 120.0
    udp_bandwidth: float = 34e6          # effective B/s incl. per-packet cost

    # --- D-Stampede over CLF, intra-cluster (Exp. 1) ---
    #: put+get runtime overhead on top of the UDP exchange:
    #: ~700 µs at 10 KB, ~1200 µs at 60 KB.
    ds_fixed_us: float = 650.0
    ds_per_byte_us: float = 0.01

    # --- intra-cluster TCP exchange (Exp. 1 baseline) ---
    tcp_fixed_us: float = 10.0
    tcp_bandwidth: float = 22.0e6        # ~0.0455 µs/B
    #: Congestion-control spikes: every spike_stride-th kilobyte size is
    #: inflated by spike_factor (deterministic, like the periodic bumps in
    #: Fig. 11).
    tcp_spike_stride: int = 9
    tcp_spike_offset: int = 4
    tcp_spike_factor: float = 1.45

    # --- client-to-cluster TCP (Exps. 2/3 baselines) ---
    #: 2500 µs at 55 KB.
    ctcp_fixed_us: float = 350.0
    ctcp_bandwidth: float = 25.57e6
    #: The Java TCP baseline is "similar" to C's: small constant extra.
    jtcp_extra_fixed_us: float = 50.0
    jtcp_bandwidth_factor: float = 0.97

    # --- C client runtime overhead per cluster traversal (Exp. 2) ---
    #: config 1 = TCP + 800 µs at 55 KB ("mostly pointer manipulation").
    c_marshal_fixed_us: float = 350.0
    c_marshal_per_byte_us: float = 0.00909
    #: The return (get) traversal of config 3 pays only the fixed cost.
    c_get_fixed_us: float = 300.0

    # --- Java client runtime overhead per traversal (Exp. 3) ---
    #: config 1 = TCP + ~8400 µs at 55 KB ("construction of objects").
    j_marshal_fixed_us: float = 500.0
    j_marshal_per_byte_us: float = 0.1434
    #: Unmarshalling on the device for config 3's get traversal.
    j_get_fixed_us: float = 500.0
    j_get_per_byte_us: float = 0.1394

    # --- one intra-cluster CLF hop (config 2's extra traversal) ---
    #: config 2 − config 1 ≈ 1700 µs at 55 KB.
    clf_hop_fixed_us: float = 250.0
    clf_hop_per_byte_us: float = 0.0264


@dataclass(frozen=True)
class AppParams:
    """Video-conference model constants (§5.2, Figs. 14/15, Table 1)."""

    # --- shared by all versions ---
    #: Mixer-node egress NIC: the ~50 MB/s ceiling Table 1 infers.
    egress_bandwidth: float = 50e6
    #: Per-composite-send fixed cost on the egress path (connection and
    #: syscall overhead that grows the K·e term; drives the 10 f/s cutoff
    #: at ~7 clients for small images).
    egress_send_overhead_s: float = 0.0042
    #: Per-display-stream delivery throughput (client TCP receive +
    #: unmarshal + display-thread absorb): sets the 40 f/s @ 74 KB anchor.
    stream_bandwidth: float = 9.34e6
    #: Per-frame fixed cost on each display stream.
    stream_overhead_s: float = 0.0083
    #: Client uplink (camera producer to cluster).
    uplink_bandwidth: float = 12e6
    #: Mixer compose cost per composite byte (550 MHz-era blend+copy).
    compose_per_byte_s: float = 4e-9
    #: CPUs on the mixer's SMP node ("all the threads of the mixer run in
    #: one node (an 8-way SMP)").
    mixer_cpus: int = 8
    #: Pipeline window between stages (bounded channels give this).
    stage_window: int = 2
    #: Publication threshold: "we have only shown readings when the
    #: sustained frame rate ... is higher than 10 frames/sec".
    fps_floor: float = 10.0

    # --- single-threaded mixer versions (Fig. 14) ---
    #: Serial per-client handling cost in the single-threaded mixer loop
    #: (get + composite share + put, one thread doing everything).
    single_per_client_s: float = 0.0193
    #: Same loop for the hand-written socket version: marginally cheaper
    #: fixed cost (no runtime), same structure — Fig. 14 shows the two
    #: "comparable for the most part".
    single_per_client_socket_s: float = 0.0188
    #: Effective serialized write throughput of the single-threaded
    #: sender (blocking writes cannot keep the NIC saturated).
    single_write_bandwidth: float = 26e6


@dataclass(frozen=True)
class TestbedParams:
    """Everything the simulated testbed needs."""

    micro: MicroParams = field(default_factory=MicroParams)
    app: AppParams = field(default_factory=AppParams)

    #: Cluster shape (§5): 17 nodes, 8-way SMPs.
    cluster_nodes: int = 17
    cpus_per_node: int = 8

    #: The paper's micro-benchmark sweep: 1000..60000 step 1000.
    sweep_min: int = 1000
    sweep_max: int = 60000
    sweep_step: int = 1000

    def sweep_sizes(self, step: int = None) -> "list[int]":  # type: ignore[assignment]
        """The Fig. 11-13 X axis (optionally coarsened for quick runs)."""
        stride = step if step is not None else self.sweep_step
        return list(range(self.sweep_min, self.sweep_max + 1, stride))


DEFAULT_PARAMS = TestbedParams()
