"""Exception hierarchy for the D-Stampede reproduction.

Every error raised by the public API derives from :class:`StampedeError`,
so callers can catch one base class at an application boundary.  The
sub-hierarchy mirrors the major subsystems: space-time memory, transport,
runtime/nameserver, marshalling, and real-time synchrony.

The original system reported errors through C return codes (see the
``api.h`` header referenced in the paper).  A Python reproduction is better
served by exceptions; the mapping is one class per return-code family.
"""

from __future__ import annotations


class StampedeError(Exception):
    """Base class for all D-Stampede errors."""


# ---------------------------------------------------------------------------
# Space-time memory errors
# ---------------------------------------------------------------------------


class SpaceTimeError(StampedeError):
    """Base class for channel/queue (space-time memory) errors."""


class BadTimestampError(SpaceTimeError):
    """A timestamp is malformed or outside the representable range."""


class ItemNotFoundError(SpaceTimeError):
    """A requested timestamp has no item and the call was non-blocking."""


class ItemGarbageCollectedError(SpaceTimeError):
    """The requested timestamp existed but has already been reclaimed."""


class DuplicateTimestampError(SpaceTimeError):
    """A put used a timestamp that already holds an item in the channel."""


class ChannelFullError(SpaceTimeError):
    """A bounded channel/queue has no free slot and the put was non-blocking."""


class ConnectionModeError(SpaceTimeError):
    """An I/O call was made on a connection attached with the wrong mode."""


class ConnectionClosedError(SpaceTimeError):
    """The connection (or its container) was detached or destroyed."""


class ContainerDestroyedError(SpaceTimeError):
    """The channel or queue backing this handle has been destroyed."""


# ---------------------------------------------------------------------------
# Runtime / naming errors
# ---------------------------------------------------------------------------


class RuntimeStateError(StampedeError):
    """The runtime is not in a state that permits the requested operation."""


class AddressSpaceError(StampedeError):
    """An address-space id is unknown or the space has terminated."""


class NameServerError(StampedeError):
    """Base class for name-server failures."""


class NameAlreadyBoundError(NameServerError):
    """Registration attempted for a name that is already bound."""


class NameNotBoundError(NameServerError):
    """Lookup of a name that has no binding."""


class ThreadError(StampedeError):
    """Stampede thread creation/join failures."""


# ---------------------------------------------------------------------------
# Transport errors
# ---------------------------------------------------------------------------


class TransportError(StampedeError):
    """Base class for messaging-layer failures."""


class TransportClosedError(TransportError):
    """The endpoint has been closed."""


class MessageTooLargeError(TransportError):
    """A datagram exceeds the maximum size the transport permits."""


class DeliveryTimeoutError(TransportError):
    """A reliable transport gave up retransmitting a packet."""


class FramingError(TransportError):
    """A malformed frame was received on a stream transport."""


class RpcError(TransportError):
    """An RPC-level failure (bad method, remote exception, protocol skew)."""


class RpcTimeoutError(RpcError):
    """No response arrived within the call's deadline.

    Distinct from :class:`TransportClosedError`: the connection may still
    be healthy (the response frame was lost or is merely late), so the
    retry layer may re-issue the call on the same connection.
    """


class SessionResumeError(RpcError):
    """A RESUME handshake was rejected: the session is unknown, its grace
    period expired, or the resume token did not match."""


class RetryExhaustedError(TransportError):
    """The retry policy's attempt budget ran out without a success.

    The final attempt's failure is preserved as ``__cause__``.
    """


class FaultInjectedError(TransportError):
    """An error deliberately injected by :mod:`repro.transport.faults`.

    Only raised for synthetic faults that do not imitate a specific real
    exception (injected faults that model EBADF or timeouts raise the
    genuine ``OSError`` / :class:`DeliveryTimeoutError` instead, so code
    under test cannot tell injection from reality).
    """


class RemoteExecutionError(RpcError):
    """The remote side raised while executing an RPC on our behalf.

    The original exception's type name and message are preserved in
    :attr:`remote_type` and the error string.
    """

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


# ---------------------------------------------------------------------------
# Marshalling errors
# ---------------------------------------------------------------------------


class MarshalError(StampedeError):
    """Base class for wire-format encode/decode failures."""


class EncodeError(MarshalError):
    """A value cannot be represented in the selected wire format."""


class DecodeError(MarshalError):
    """Received bytes do not decode under the selected wire format."""


# ---------------------------------------------------------------------------
# Real-time synchrony errors
# ---------------------------------------------------------------------------


class SynchronyError(StampedeError):
    """Base class for real-time synchrony failures."""


class SlipError(SynchronyError):
    """A thread missed its real-time tick by more than the tolerance and no
    slip handler was registered to absorb the miss."""

    def __init__(self, tick: int, lateness: float, tolerance: float) -> None:
        super().__init__(
            f"tick {tick} missed by {lateness:.6f}s "
            f"(tolerance {tolerance:.6f}s)"
        )
        self.tick = tick
        self.lateness = lateness
        self.tolerance = tolerance


# ---------------------------------------------------------------------------
# Simulation errors
# ---------------------------------------------------------------------------


class SimulationError(StampedeError):
    """Base class for discrete-event simulator misuse."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or simulated time ran backwards."""
