"""Telepresence: the paper's motivating scenario as an application.

§1: "John ... joins the discussion.  Coordinated video and audio sensors
capture John's appearance ... and speech in real-time.  This information
is transmitted across the network and used to reconstruct a virtual
avatar of John.  Each participant in the chat session sees and hears the
avatars for the other participants."

The pipeline:

* each **station** (an end device over TCP) runs a camera producer and a
  microphone producer into its own ``video:<name>`` and ``audio:<name>``
  channels — two streams at *different rates* sharing one millisecond
  timeline;
* a cluster-side **avatar builder** per participant temporally
  correlates the two modalities: for every video timestamp it
  random-accesses the audio channel at the *same* instant and publishes
  a fused :class:`Avatar` sample on ``avatar:<name>``;
* every station's **renderer** subscribes to the *other* participants'
  avatar channels and verifies that what it hears was captured at the
  same instant as what it sees.

Stations join at staggered times (the dynamic start/stop requirement);
late joiners discover existing avatar channels through the name server.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.apps.frames import VirtualCamera, verify_frame, Frame
from repro.core.connection import ConnectionMode
from repro.core.threads import StampedeThread, spawn
from repro.client.client import StampedeClient
from repro.errors import StampedeError
from repro.runtime.runtime import Runtime
from repro.runtime.server import StampedeServer

#: Video frame period on the shared millisecond timeline.
VIDEO_PERIOD_MS = 33
#: Audio block period: three audio blocks per video frame.
AUDIO_PERIOD_MS = 11


def video_channel(name: str) -> str:
    """Channel name for a participant's video stream."""
    return f"video:{name}"


def audio_channel(name: str) -> str:
    """Channel name for a participant's audio stream."""
    return f"audio:{name}"


def avatar_channel(name: str) -> str:
    """Channel name for a participant's fused avatar stream."""
    return f"avatar:{name}"


class VirtualMicrophone:
    """Deterministic audio source, keyed like :class:`VirtualCamera` so
    a renderer can verify any (speaker, timestamp) block it receives."""

    def __init__(self, speaker: int, block_size: int = 256) -> None:
        if block_size <= 0:
            raise ValueError(f"block size must be positive: {block_size}")
        self.speaker = speaker
        self.block_size = block_size

    def capture(self, timestamp_ms: int) -> bytes:
        """The deterministic audio block for *timestamp_ms*."""
        return self.samples_for(self.speaker, timestamp_ms,
                                self.block_size)

    @staticmethod
    def samples_for(speaker: int, timestamp_ms: int, size: int) -> bytes:
        """The keyed pattern a verifier can regenerate."""
        seed = (speaker * 92_821 + timestamp_ms * 68_917) & 0xFFFFFFFF
        unit = struct.pack(">I", seed)
        return (unit * (size // 4 + 1))[:size]


def verify_audio(speaker: int, timestamp_ms: int, samples: bytes) -> bool:
    """Whether *samples* match the deterministic source pattern."""
    return samples == VirtualMicrophone.samples_for(
        speaker, timestamp_ms, len(samples)
    )


@dataclass(frozen=True)
class Avatar:
    """One fused audio+video sample of a participant.

    ``audio_ts`` records which audio block the builder correlated with
    the video frame — equal timestamps is the temporal-correlation
    guarantee the whole design exists to provide.
    """

    participant: int
    timestamp_ms: int
    video: bytes
    audio: bytes
    audio_ts: int

    def to_wire(self) -> dict:
        """Codec-domain form for crossing the wire."""
        return {
            "participant": self.participant,
            "ts": self.timestamp_ms,
            "video": self.video,
            "audio": self.audio,
            "audio_ts": self.audio_ts,
        }

    @staticmethod
    def from_wire(value: dict) -> "Avatar":
        """Rebuild an Avatar from its wire form."""
        return Avatar(
            participant=value["participant"],
            timestamp_ms=value["ts"],
            video=value["video"],
            audio=value["audio"],
            audio_ts=value["audio_ts"],
        )


@dataclass
class StationReport:
    """What one station's renderer observed."""

    participant: int
    avatars_rendered: int = 0
    correlated: int = 0
    miscorrelated: int = 0
    corrupt: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No errors, miscorrelations, or corrupt tiles."""
        return (not self.errors and self.miscorrelated == 0
                and self.corrupt == 0)


class TelepresenceStation:
    """One participant's end device: camera + microphone + renderer."""

    def __init__(self, participant: int, host: str, port: int,
                 frames: int, peers: List[int],
                 image_size: int = 1_500,
                 codec: str = "xdr") -> None:
        self.participant = participant
        self.frames = frames
        self.peers = [p for p in peers if p != participant]
        self.camera = VirtualCamera(participant, image_size)
        self.microphone = VirtualMicrophone(participant)
        self.client = StampedeClient(
            host, port, client_name=f"station-{participant}", codec=codec,
        )
        self.report = StationReport(participant)
        self._threads: List[StampedeThread] = []

    # -- lifecycle -----------------------------------------------------------

    def join(self) -> None:
        """Create this station's channels and start its renderers.

        Renderers attach *before* any producer runs (see
        :func:`run_chat_room`'s rendezvous): an avatar consumed by the
        early participants would otherwise be garbage-collected before a
        late joiner's renderer attaches — exactly the dynamic-join data
        race space-time memory's per-consumer GC makes explicit.
        """
        name = str(self.participant)
        self.client.create_channel(video_channel(name), capacity=32)
        self.client.create_channel(audio_channel(name), capacity=96)
        for peer in self.peers:
            self._threads.append(spawn(
                self._renderer, peer,
                name=f"render-{self.participant}<-{peer}",
            ))

    def go_live(self) -> None:
        """Start the camera and microphone producers."""
        self._threads.append(spawn(
            self._camera_producer,
            name=f"camera-{self.participant}",
        ))
        self._threads.append(spawn(
            self._microphone_producer,
            name=f"mic-{self.participant}",
        ))

    def finish(self, timeout: float = 60.0) -> StationReport:
        """Join this station's threads and return its report."""
        for thread in self._threads:
            thread.join(timeout=timeout)
        self.client.close()
        return self.report

    # -- producers --------------------------------------------------------------

    def _camera_producer(self) -> None:
        out = self.client.attach(video_channel(str(self.participant)),
                                 ConnectionMode.OUT)
        for index in range(self.frames):
            ts = index * VIDEO_PERIOD_MS
            out.put(ts, self.camera.capture(ts).encode())

    def _microphone_producer(self) -> None:
        out = self.client.attach(audio_channel(str(self.participant)),
                                 ConnectionMode.OUT)
        blocks = self.frames * (VIDEO_PERIOD_MS // AUDIO_PERIOD_MS)
        for index in range(blocks):
            ts = index * AUDIO_PERIOD_MS
            out.put(ts, self.microphone.capture(ts))

    # -- renderer -----------------------------------------------------------------

    def _renderer(self, peer: int) -> None:
        """Consume the peer's avatar stream and verify both modalities
        and their temporal correlation."""
        try:
            inp = self.client.attach(avatar_channel(str(peer)),
                                     ConnectionMode.IN, wait=30.0)
        except StampedeError as exc:
            self.report.errors.append(f"peer {peer}: {exc}")
            return
        for index in range(self.frames):
            ts = index * VIDEO_PERIOD_MS
            try:
                _, wire = inp.get(ts, timeout=30.0)
            except StampedeError as exc:
                self.report.errors.append(f"peer {peer} t={ts}: {exc}")
                return
            avatar = Avatar.from_wire(wire)
            self.report.avatars_rendered += 1
            frame = Frame(peer, ts, avatar.video)
            video_ok = verify_frame(frame)
            audio_ok = verify_audio(peer, avatar.audio_ts, avatar.audio)
            if not (video_ok and audio_ok):
                self.report.corrupt += 1
            elif avatar.audio_ts == avatar.timestamp_ms == ts:
                self.report.correlated += 1
            else:
                self.report.miscorrelated += 1
            inp.consume(ts)


class AvatarBuilder:
    """Cluster-side fusion thread for one participant.

    "Extraction of higher order information content from such raw data
    requires significantly more processing power" (§1) — hence fusion
    runs on the cluster, in its own address space, fed by the station's
    channels.
    """

    def __init__(self, runtime: Runtime, participant: int,
                 frames: int, space: str = "fusion") -> None:
        self.runtime = runtime
        self.participant = participant
        self.frames = frames
        self.space = space

    def create_output_channel(self) -> None:
        """Create this participant's avatar channel up front."""
        self.runtime.create_channel(avatar_channel(str(self.participant)),
                                    space=self.space, capacity=32)

    def start(self) -> StampedeThread:
        """Spawn the fusion thread; returns it for joining."""
        return self.runtime.spawn(
            self.space, self._build,
            name=f"avatar-builder-{self.participant}",
        )

    def _build(self) -> None:
        name = str(self.participant)
        video_in = self.runtime.attach(
            video_channel(name), ConnectionMode.IN,
            from_space=self.space, owner=f"builder-{name}", wait=30.0,
        )
        audio_in = self.runtime.attach(
            audio_channel(name), ConnectionMode.IN,
            from_space=self.space, owner=f"builder-{name}", wait=30.0,
        )
        out = self.runtime.attach(
            avatar_channel(name), ConnectionMode.OUT,
            from_space=self.space, owner=f"builder-{name}",
        )
        for index in range(self.frames):
            ts = index * VIDEO_PERIOD_MS
            _, encoded = video_in.get(ts, timeout=30.0)
            frame = Frame.decode(encoded)
            # Temporal correlation: the audio block captured at the SAME
            # instant as the video frame (both producers share the
            # millisecond timeline, and VIDEO_PERIOD is a multiple of
            # AUDIO_PERIOD, so the block exists).
            audio_ts, samples = audio_in.get(ts, timeout=30.0)
            avatar = Avatar(
                participant=self.participant,
                timestamp_ms=ts,
                video=frame.pixels,
                audio=samples,
                audio_ts=audio_ts,
            )
            out.put(ts, avatar.to_wire())
            video_in.consume(ts)
            # Done with every audio block up to and including this
            # frame's instant (the skipped-over blocks between video
            # frames are reclaimed by the floor).
            audio_in.consume(ts)
            audio_in.consume_until(ts + 1)


@dataclass(frozen=True)
class ChatRoomResult:
    """Aggregate outcome of a chat-room run."""

    stations: List[StationReport]
    frames: int

    @property
    def all_verified(self) -> bool:
        """Every avatar at every renderer verified and correlated."""
        if not all(report.clean for report in self.stations):
            return False
        expected_per_station = (len(self.stations) - 1) * self.frames
        return all(
            report.correlated == expected_per_station
            for report in self.stations
        )


def run_chat_room(participants: int = 3, frames: int = 6,
                  image_size: int = 1_200,
                  timeout: float = 60.0) -> ChatRoomResult:
    """Run a full telepresence chat room over real TCP.

    Stations join one after the other (dynamic start); a roster
    rendezvous ensures every renderer is attached before any camera goes
    live, so early avatars cannot be garbage-collected before a late
    joiner sees them.  Every avatar at every renderer is verified for
    content integrity *and* audio/video temporal correlation.
    """
    import time as _time

    if participants < 2:
        raise ValueError("a chat room needs at least two participants")
    runtime = Runtime(name="telepresence", gc_interval=0.02)
    runtime.create_address_space("fusion")
    # shards=1: avatar builders attach to this runtime object directly,
    # which fork-sharding cannot support (see docs/SCALING.md).
    server = StampedeServer(runtime, device_spaces=["edge"],
                            shards=1).start()
    stations: List[TelepresenceStation] = []
    try:
        host, port = server.address
        peer_ids = list(range(participants))
        builders = []
        for participant in peer_ids:
            builder = AvatarBuilder(runtime, participant, frames)
            builder.create_output_channel()
            builders.append(builder)
        for participant in peer_ids:
            station = TelepresenceStation(
                participant, host, port, frames, peer_ids,
                image_size=image_size,
            )
            station.join()  # staggered joins: one station at a time
            stations.append(station)
        # Rendezvous: every avatar channel must have all its renderers
        # attached before anyone produces.
        deadline = _time.monotonic() + timeout
        for participant in peer_ids:
            channel = runtime.lookup_container(
                avatar_channel(str(participant))
            )
            while len(channel.input_connections()) < participants - 1:
                if _time.monotonic() > deadline:
                    raise StampedeError("renderers failed to attach")
                _time.sleep(0.005)
        builder_threads = [builder.start() for builder in builders]
        for station in stations:
            station.go_live()
        for thread in builder_threads:
            thread.join(timeout=timeout)
        reports = [station.finish(timeout=timeout)
                   for station in stations]
        return ChatRoomResult(stations=reports, frames=frames)
    finally:
        for station in stations:
            try:
                station.client.close()
            except StampedeError:  # pragma: no cover - teardown race
                pass
        server.close()
        runtime.shutdown()
