"""The Figure 3 pattern: task-and-data parallelism over a queue.

"If it is desired to analyze a given frame of video for objects of
interest, then the frame can be partitioned into frame-fragments (all
having the same timestamp) and placed in a queue by a splitter thread.  A
distinct thread can analyze each frame-fragment ... A joiner thread can
then stitch together the composite analyzed outputs" (§3.1).

:class:`TrackerFarm` packages the whole pipeline: splitter -> queue ->
tracker pool -> results queue -> joiner -> output channel.  The analysis
function is pluggable; the default "tracker" computes a digest per
fragment so tests can verify exactly-once processing.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.channel import Channel
from repro.core.connection import ConnectionMode
from repro.core.squeue import SQueue
from repro.core.threads import StampedeThread, spawn
from repro.core.timestamps import OLDEST

#: An analyzer maps (fragment index, fragment bytes) -> analysis result.
Analyzer = Callable[[int, bytes], Any]


def default_analyzer(index: int, fragment: bytes) -> str:
    """A stand-in for the paper's color tracker: digest the fragment."""
    return hashlib.sha1(fragment).hexdigest()


def split_frame(pixels: bytes, fragments: int) -> List[bytes]:
    """Partition a frame into near-equal fragments (last takes the rest).

    :raises ValueError: more fragments than bytes, or non-positive count.
    """
    if fragments <= 0:
        raise ValueError(f"fragments must be positive, got {fragments}")
    if fragments > max(1, len(pixels)):
        raise ValueError(
            f"cannot split {len(pixels)} bytes into {fragments} fragments"
        )
    base = len(pixels) // fragments
    parts = [
        pixels[i * base:(i + 1) * base] for i in range(fragments - 1)
    ]
    parts.append(pixels[(fragments - 1) * base:])
    return parts


@dataclass(frozen=True)
class TrackedFrame:
    """The joiner's stitched output for one timestamp."""

    timestamp: int
    results: Tuple[Any, ...]  # indexed by fragment


class TrackerFarm:
    """Splitter / tracker-pool / joiner over space-time memory.

    Parameters
    ----------
    workers:
        Tracker threads sharing the fragment queue (the data-parallel
        width of Figure 3).
    fragments:
        Fragments per frame (defaults to ``workers``).
    analyzer:
        The per-fragment analysis function.
    """

    def __init__(self, workers: int, fragments: Optional[int] = None,
                 analyzer: Analyzer = default_analyzer) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self.fragments = fragments if fragments is not None else workers
        if self.fragments <= 0:
            raise ValueError("fragments must be positive")
        self.analyzer = analyzer
        self.work = SQueue("tracker-fragments")
        self.results = SQueue("tracker-results")
        self.output = Channel("tracked-frames")
        self._threads: List[StampedeThread] = []
        self._stop = threading.Event()

    # -- pipeline ------------------------------------------------------------

    def process(self, frames: Dict[int, bytes],
                timeout: float = 30.0) -> Dict[int, TrackedFrame]:
        """Run the farm over ``{timestamp: pixels}`` and return the
        stitched analysis per timestamp."""
        expected = len(frames)
        splitter = spawn(self._splitter, frames, name="splitter")
        trackers = [
            spawn(self._tracker, frame_count=expected,
                  name=f"tracker-{index}")
            for index in range(self.workers)
        ]
        joiner = spawn(self._joiner, expected, name="joiner")
        splitter.join(timeout=timeout)
        for tracker in trackers:
            tracker.join(timeout=timeout)
        joined: Dict[int, TrackedFrame] = joiner.join(timeout=timeout)
        return joined

    def _splitter(self, frames: Dict[int, bytes]) -> None:
        out = self.work.attach(ConnectionMode.OUT, owner="splitter")
        try:
            for timestamp, pixels in frames.items():
                for index, fragment in enumerate(
                    split_frame(pixels, self.fragments)
                ):
                    out.put(timestamp, (index, fragment))
        finally:
            out.detach()

    def _tracker(self, frame_count: int) -> int:
        """Each tracker pulls fragments until its share is done.

        Work-sharing: the queue delivers each fragment to exactly one
        tracker, so the shares need not be equal — this returns how many
        fragments this tracker analyzed.
        """
        total = frame_count * self.fragments
        base = total // self.workers
        # Workers race for the remainder; the queue's exactly-once
        # delivery keeps the global count correct.
        my_quota = base + (1 if total % self.workers else 0)
        win = self.work.attach(ConnectionMode.IN, owner="tracker")
        rout = self.results.attach(ConnectionMode.OUT, owner="tracker")
        analyzed = 0
        try:
            while analyzed < my_quota:
                try:
                    ts, (index, fragment) = win.get(OLDEST, timeout=0.25)
                except Exception:  # noqa: BLE001 - queue drained
                    break
                rout.put(ts, (index, self.analyzer(index, fragment)))
                win.consume(ts)
                analyzed += 1
        finally:
            win.detach()
            rout.detach()
        return analyzed

    def _joiner(self, expected: int) -> Dict[int, TrackedFrame]:
        rin = self.results.attach(ConnectionMode.IN, owner="joiner")
        out = self.output.attach(ConnectionMode.OUT, owner="joiner")
        pending: Dict[int, Dict[int, Any]] = {}
        joined: Dict[int, TrackedFrame] = {}
        try:
            while len(joined) < expected:
                ts, (index, result) = rin.get(OLDEST, timeout=30.0)
                rin.consume(ts)
                parts = pending.setdefault(ts, {})
                parts[index] = result
                if len(parts) == self.fragments:
                    tracked = TrackedFrame(
                        timestamp=ts,
                        results=tuple(parts[i]
                                      for i in range(self.fragments)),
                    )
                    joined[ts] = tracked
                    out.put(ts, tracked)
                    del pending[ts]
        finally:
            rin.detach()
            out.detach()
        return joined

    def destroy(self) -> None:
        """Destroy the farm's queues and output channel."""
        self.work.destroy()
        self.results.destroy()
        self.output.destroy()
