"""Virtual cameras, frames, and compositing.

§5.2: "We abstract out the camera and display from the application to
make the study a controlled experiment ... The producer thread in the
client program reads a 'virtual' camera (a memory buffer)".  The same
abstraction serves the functional application (§4): frames are
self-describing byte blobs so corruption or mis-correlation anywhere in
the pipeline is detectable, and a composite carries the provenance of
every tile.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List

from repro.errors import DecodeError

_HEADER = struct.Struct(">4sIIQI")  # magic, source id, size, ts, checksum
_MAGIC = b"FRM1"


@dataclass(frozen=True)
class Frame:
    """One camera frame: source, timestamp, pixel payload."""

    source: int
    timestamp: int
    pixels: bytes

    def encode(self) -> bytes:
        """Self-describing wire form with a CRC over the pixels."""
        checksum = zlib.crc32(self.pixels)
        header = _HEADER.pack(_MAGIC, self.source, len(self.pixels),
                              self.timestamp, checksum)
        return header + self.pixels

    @staticmethod
    def decode(data: bytes) -> "Frame":
        """Parse and integrity-check an encoded frame.

        :raises DecodeError: bad magic, short payload, or CRC mismatch.
        """
        if len(data) < _HEADER.size:
            raise DecodeError(f"frame too short: {len(data)} bytes")
        magic, source, size, timestamp, checksum = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise DecodeError(f"bad frame magic {magic!r}")
        pixels = data[_HEADER.size:]
        if len(pixels) != size:
            raise DecodeError(
                f"frame payload is {len(pixels)} bytes, header says {size}"
            )
        if zlib.crc32(pixels) != checksum:
            raise DecodeError("frame checksum mismatch (corrupt payload)")
        return Frame(source=source, timestamp=timestamp, pixels=pixels)

    @property
    def size(self) -> int:
        """Pixel payload length in bytes."""
        return len(self.pixels)


class VirtualCamera:
    """Deterministic frame source for one participant.

    Pixel content is a cheap keyed pattern: any (source, timestamp) pair
    regenerates identical pixels, so a consumer can verify it received
    exactly the frame the producer made — end-to-end, across marshalling,
    surrogates, and mixing.
    """

    def __init__(self, source: int, image_size: int) -> None:
        if image_size <= 0:
            raise ValueError(f"image size must be positive: {image_size}")
        self.source = source
        self.image_size = image_size

    def capture(self, timestamp: int) -> Frame:
        """The deterministic frame for *timestamp*."""
        return Frame(
            source=self.source,
            timestamp=timestamp,
            pixels=self.pixels_for(self.source, timestamp,
                                   self.image_size),
        )

    @staticmethod
    def pixels_for(source: int, timestamp: int, size: int) -> bytes:
        """The deterministic pattern a verifier can regenerate."""
        seed = (source * 2_654_435_761 + timestamp * 40_503) & 0xFFFFFFFF
        unit = struct.pack(">I", seed)
        repeats = size // 4 + 1
        return (unit * repeats)[:size]


def compose(frames: List[Frame]) -> bytes:
    """Build the composite image the mixer sends to every display.

    The §4 mixer "takes corresponding timestamped frames from these
    channels to create a composite video output": all inputs must carry
    the same timestamp (that is the temporal-correlation guarantee the
    channels give).  The composite is the per-source tiles concatenated
    in source order, prefixed with a tile directory.

    :raises ValueError: empty input or mixed timestamps (a correlation
        bug upstream).
    """
    if not frames:
        raise ValueError("cannot compose zero frames")
    timestamps = {frame.timestamp for frame in frames}
    if len(timestamps) != 1:
        raise ValueError(
            f"temporal correlation violated: mixing timestamps "
            f"{sorted(timestamps)}"
        )
    ordered = sorted(frames, key=lambda f: f.source)
    directory = struct.pack(">I", len(ordered))
    for frame in ordered:
        directory += struct.pack(">II", frame.source, frame.size)
    return directory + b"".join(frame.pixels for frame in ordered)


def decompose(composite: bytes, timestamp: int) -> List[Frame]:
    """Split a composite back into per-source frames (display side).

    :raises DecodeError: malformed directory or truncated tiles.
    """
    if len(composite) < 4:
        raise DecodeError("composite too short for its directory")
    (count,) = struct.unpack_from(">I", composite)
    offset = 4
    entries = []
    for _ in range(count):
        if offset + 8 > len(composite):
            raise DecodeError("composite directory truncated")
        source, size = struct.unpack_from(">II", composite, offset)
        offset += 8
        entries.append((source, size))
    frames = []
    for source, size in entries:
        if offset + size > len(composite):
            raise DecodeError("composite tiles truncated")
        frames.append(Frame(source=source, timestamp=timestamp,
                            pixels=composite[offset:offset + size]))
        offset += size
    if offset != len(composite):
        raise DecodeError(
            f"{len(composite) - offset} trailing bytes in composite"
        )
    return frames


def verify_frame(frame: Frame) -> bool:
    """True if the frame's pixels match its camera's deterministic
    pattern — the end-to-end integrity check used in tests and examples."""
    expected = VirtualCamera.pixels_for(frame.source, frame.timestamp,
                                        frame.size)
    return frame.pixels == expected
