"""The hand-written TCP-socket video conference (no D-Stampede).

§5.2's first version: "the first version uses Unix TCP/IP socket for
communication between the client programs and the server program.  The
mixer (a single thread) obtains images from each client one after the
other, generates the composite, and sends it to the clients one after
the other."

The paper keeps this version around for two findings this module lets us
reproduce on the real stack: "1) Due to the complexity of this
application, writing it using sockets required much more effort compared
to D-Stampede.  2) The performance of D-Stampede version is comparable
to the socket version."  Point 1 is visible in the code itself — this
file hand-rolls session handshakes, per-client sockets, frame ordering
and teardown that the D-Stampede version gets from channels — and
point 2 is asserted by ``benchmarks/test_ablation_app_versions.py``.

The wire protocol is deliberately minimal: length-prefixed frames (the
shared framing helpers), where the first frame from a client is a HELLO
carrying its participant id, producers push encoded camera frames in
timestamp order, and the server pushes composites back on the same
socket.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.frames import Frame, VirtualCamera, compose, decompose, \
    verify_frame
from repro.errors import StampedeError, TransportClosedError
from repro.transport.tcp import TcpConnection, TcpListener, connect_tcp
from repro.util.logging import get_logger

_log = get_logger("apps.socket_videoconf")

_HELLO = struct.Struct(">4sI")
_HELLO_MAGIC = b"VCON"


class SocketConferenceServer:
    """Single-threaded-mixer conference server on raw sockets."""

    def __init__(self, participants: int, frames: int,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.participants = participants
        self.frames = frames
        self._listener = TcpListener(host, port)
        self._connections: Dict[int, TcpConnection] = {}
        self._mixer_thread: Optional[threading.Thread] = None
        self._accept_thread = threading.Thread(
            target=self._accept_all, name="vcon-accept", daemon=True
        )
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def address(self):
        """The listening (host, port)."""
        return self._listener.address

    def start(self) -> "SocketConferenceServer":
        """Begin accepting participants; returns self."""
        self._accept_thread.start()
        return self

    def _accept_all(self) -> None:
        try:
            while len(self._connections) < self.participants:
                connection = self._listener.accept(timeout=30.0)
                magic, participant = _HELLO.unpack(
                    connection.recv_frame(timeout=10.0)
                )
                if magic != _HELLO_MAGIC:
                    raise StampedeError("bad conference hello")
                self._connections[participant] = connection
            self._ready.set()
            self._mix()
        except BaseException as exc:  # noqa: BLE001 - surfaced at join
            self._failure = exc
            self._ready.set()

    def _mix(self) -> None:
        """The serial mixer loop the paper describes."""
        ordered = [self._connections[p]
                   for p in sorted(self._connections)]
        for ts in range(self.frames):
            tiles: List[Frame] = []
            for connection in ordered:  # one after the other
                tiles.append(Frame.decode(
                    connection.recv_frame(timeout=30.0)
                ))
            if any(tile.timestamp != ts for tile in tiles):
                raise StampedeError(
                    f"socket version lost frame ordering at ts={ts}"
                )
            composite = compose(tiles)
            for connection in ordered:  # one after the other
                connection.send_frame(composite)

    def join(self, timeout: float) -> None:
        """Wait for the mixer to finish, re-raising its failure."""
        self._accept_thread.join(timeout=timeout)
        if self._accept_thread.is_alive():
            raise StampedeError("socket mixer did not finish")
        if self._failure is not None:
            raise StampedeError(
                f"socket mixer failed: {self._failure}"
            ) from self._failure

    def close(self) -> None:
        """Close every participant socket and the listener."""
        for connection in self._connections.values():
            connection.close()
        self._listener.close()


@dataclass
class SocketParticipantResult:
    """What one participant's display observed (socket version)."""

    participant: int
    composites_received: int = 0
    tiles_verified: int = 0
    corrupt_tiles: int = 0
    errors: List[str] = field(default_factory=list)


class SocketConferenceClient:
    """One participant: producer and display sharing one socket."""

    def __init__(self, participant: int, host: str, port: int,
                 frames: int, image_size: int) -> None:
        self.participant = participant
        self.frames = frames
        self.camera = VirtualCamera(participant, image_size)
        self.connection = connect_tcp((host, port))
        self.connection.send_frame(
            _HELLO.pack(_HELLO_MAGIC, participant)
        )
        self.result = SocketParticipantResult(participant)
        self._threads: List[threading.Thread] = []

    def start(self) -> None:
        """Begin accepting participants; returns self."""
        producer = threading.Thread(target=self._produce, daemon=True)
        display = threading.Thread(target=self._display, daemon=True)
        self._threads = [producer, display]
        producer.start()
        display.start()

    def _produce(self) -> None:
        try:
            for ts in range(self.frames):
                self.connection.send_frame(
                    self.camera.capture(ts).encode()
                )
        except TransportClosedError as exc:
            self.result.errors.append(f"producer: {exc}")

    def _display(self) -> None:
        try:
            for ts in range(self.frames):
                composite = self.connection.recv_frame(timeout=30.0)
                self.result.composites_received += 1
                for tile in decompose(composite, ts):
                    if verify_frame(tile):
                        self.result.tiles_verified += 1
                    else:
                        self.result.corrupt_tiles += 1
        except StampedeError as exc:
            self.result.errors.append(f"display: {exc}")

    def finish(self, timeout: float) -> SocketParticipantResult:
        """Join this participant's threads and return its report."""
        for thread in self._threads:
            thread.join(timeout=timeout)
        self.connection.close()
        return self.result


@dataclass(frozen=True)
class SocketConferenceResult:
    """Aggregate outcome of a socket-version conference run."""

    participants: List[SocketParticipantResult]
    frames: int

    @property
    def all_verified(self) -> bool:
        """True when every expected tile verified with no errors."""
        expected = (len(self.participants) * self.frames
                    * len(self.participants))
        return (all(not p.errors and p.corrupt_tiles == 0
                    for p in self.participants)
                and sum(p.tiles_verified
                        for p in self.participants) == expected)


def run_socket_conference(participants: int = 2, frames: int = 10,
                          image_size: int = 2_000,
                          timeout: float = 60.0
                          ) -> SocketConferenceResult:
    """Run the socket version end-to-end, verifying every tile."""
    server = SocketConferenceServer(participants, frames).start()
    clients: List[SocketConferenceClient] = []
    try:
        host, port = server.address
        for participant in range(participants):
            client = SocketConferenceClient(
                participant, host, port, frames, image_size
            )
            client.start()
            clients.append(client)
        server.join(timeout=timeout)
        results = [client.finish(timeout=timeout) for client in clients]
        return SocketConferenceResult(participants=results,
                                      frames=frames)
    finally:
        for client in clients:
            client.connection.close()
        server.close()
