"""The §4 video-conferencing application on the real runtime.

The structure is exactly the paper's (Figure 5):

* the **server program** creates cluster address spaces, a mixer thread
  in its own space ``N_M``, and a composite channel ``C0``;
* each **client program** (an end device over TCP) creates its own video
  channel ``C_j``, runs a producer thread putting timestamped frames into
  it, and a display thread getting composites from ``C0``;
* the **mixer** attaches to every ``C_j``, gets *corresponding
  timestamped* frames, composes them, and puts the composite into ``C0``.

Both mixer organisations of §5.2 are provided: ``single`` (one thread
does gets, composition and the put serially) and ``multi`` (one getter
thread per participant feeding an assembly buffer, plus a designated
compositing thread — "once the image is fully constructed, it is placed
in the channel by a designated thread").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List

from repro.apps.frames import Frame, VirtualCamera, compose, decompose, \
    verify_frame
from repro.core.connection import ConnectionMode
from repro.core.threads import StampedeThread, spawn
from repro.client.client import StampedeClient
from repro.errors import StampedeError
from repro.runtime.runtime import Runtime
from repro.runtime.server import StampedeServer
from repro.util.logging import get_logger

_log = get_logger("apps.videoconf")

COMPOSITE_CHANNEL = "composite:C0"


def video_channel_name(participant: int) -> str:
    """The channel name for one participant's camera stream."""
    return f"video:C{participant}"


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------


class ConferenceServer:
    """The cluster half: runtime, TCP front door, and the mixer."""

    def __init__(self, participants: int, frames: int,
                 mixer_mode: str = "multi", host: str = "127.0.0.1",
                 port: int = 0) -> None:
        if mixer_mode not in ("single", "multi"):
            raise ValueError(f"unknown mixer mode {mixer_mode!r}")
        self.participants = participants
        self.frames = frames
        self.mixer_mode = mixer_mode
        self.runtime = Runtime(name="videoconf", gc_interval=0.02)
        self.runtime.create_address_space("N_M")
        # shards is pinned to 1: the mixer threads live in this process
        # and attach to the runtime object directly, so the space-time
        # memory cannot be fork-sharded out from under them (sharding
        # requires every producer/consumer to enter through the TCP
        # front door — see docs/SCALING.md).
        self.server = StampedeServer(
            self.runtime, host=host, port=port,
            device_spaces=["N1", "N2"], shards=1,
        ).start()
        self.runtime.create_channel(COMPOSITE_CHANNEL, space="N_M",
                                    capacity=8)
        self._mixer_threads: List[StampedeThread] = []

    @property
    def address(self):
        """The TCP address participants join through."""
        return self.server.address

    def start_mixer(self) -> None:
        """Spawn the mixer once all participant channels are announced."""
        if self.mixer_mode == "single":
            self._mixer_threads.append(
                self.runtime.spawn("N_M", self._single_threaded_mixer,
                                   name="mixer")
            )
        else:
            self._start_multi_threaded_mixer()

    def join_mixer(self, timeout: float) -> None:
        """Wait for every mixer thread to finish its frames."""
        for thread in self._mixer_threads:
            thread.join(timeout=timeout)

    def close(self) -> None:
        """Stop the server and tear down the runtime."""
        self.server.close()
        self.runtime.shutdown()

    # -- mixer organisations ------------------------------------------------------

    def _attach_inputs(self):
        """Input connections to every participant channel (waits for the
        dynamically-joining devices to create them)."""
        connections = []
        for participant in range(self.participants):
            connections.append(self.runtime.attach(
                video_channel_name(participant), ConnectionMode.IN,
                from_space="N_M", owner="mixer", wait=30.0,
            ))
        return connections

    def _single_threaded_mixer(self) -> None:
        inputs = self._attach_inputs()
        output = self.runtime.attach(COMPOSITE_CHANNEL, ConnectionMode.OUT,
                                     from_space="N_M", owner="mixer")
        for ts in range(self.frames):
            tiles = []
            for connection in inputs:
                _, payload = connection.get(ts, timeout=30.0)
                tiles.append(Frame.decode(payload))
                connection.consume(ts)
            output.put(ts, compose(tiles))

    def _start_multi_threaded_mixer(self) -> None:
        assembly: Dict[int, Dict[int, Frame]] = {}
        lock = threading.Lock()
        complete = threading.Condition(lock)

        def getter(participant: int) -> None:
            connection = self.runtime.attach(
                video_channel_name(participant), ConnectionMode.IN,
                from_space="N_M", owner=f"mixer-getter-{participant}",
                wait=30.0,
            )
            for ts in range(self.frames):
                _, payload = connection.get(ts, timeout=30.0)
                frame = Frame.decode(payload)
                connection.consume(ts)
                with lock:
                    assembly.setdefault(ts, {})[participant] = frame
                    complete.notify_all()

        def designated_putter() -> None:
            output = self.runtime.attach(
                COMPOSITE_CHANNEL, ConnectionMode.OUT,
                from_space="N_M", owner="mixer-putter",
            )
            for ts in range(self.frames):
                with lock:
                    while len(assembly.get(ts, {})) < self.participants:
                        if not complete.wait(timeout=30.0):
                            raise StampedeError(
                                f"mixer starved waiting for frame {ts}"
                            )
                    tiles = [assembly[ts][p]
                             for p in range(self.participants)]
                    del assembly[ts]
                output.put(ts, compose(tiles))

        for participant in range(self.participants):
            self._mixer_threads.append(self.runtime.spawn(
                "N_M", getter, participant,
                name=f"mixer-getter-{participant}",
            ))
        self._mixer_threads.append(self.runtime.spawn(
            "N_M", designated_putter, name="mixer-putter"
        ))


# ---------------------------------------------------------------------------
# Client side (end device)
# ---------------------------------------------------------------------------


@dataclass
class ParticipantResult:
    """What one participant's display thread observed."""

    participant: int
    composites_received: int = 0
    tiles_verified: int = 0
    corrupt_tiles: int = 0
    errors: List[str] = field(default_factory=list)


class ConferenceParticipant:
    """One end device: a producer thread and a display thread sharing a
    single client connection, as in §4."""

    def __init__(self, participant: int, host: str, port: int,
                 frames: int, image_size: int,
                 codec: str = "xdr") -> None:
        self.participant = participant
        self.frames = frames
        self.camera = VirtualCamera(participant, image_size)
        self.client = StampedeClient(
            host, port, client_name=f"participant-{participant}",
            codec=codec,
        )
        self.result = ParticipantResult(participant)
        self._threads: List[StampedeThread] = []

    def start(self) -> None:
        """Create this device's channel and start its threads."""
        self.client.create_channel(video_channel_name(self.participant),
                                   capacity=8)
        self._threads.append(spawn(
            self._producer, name=f"producer-{self.participant}"
        ))
        self._threads.append(spawn(
            self._display, name=f"display-{self.participant}"
        ))

    def _producer(self) -> None:
        connection = self.client.attach(
            video_channel_name(self.participant), ConnectionMode.OUT
        )
        for ts in range(self.frames):
            frame = self.camera.capture(ts)
            # Streaming put: fire-and-forget, so the camera pipelines
            # frames without paying a round trip each (the socket
            # version's producer streams the same way).
            connection.put(ts, frame.encode(), sync=False)

    def _display(self) -> None:
        connection = self.client.attach(
            COMPOSITE_CHANNEL, ConnectionMode.IN, wait=30.0
        )
        for ts in range(self.frames):
            try:
                _, composite = connection.get(ts, timeout=30.0)
            except StampedeError as exc:
                self.result.errors.append(f"frame {ts}: {exc}")
                return
            self.result.composites_received += 1
            for tile in decompose(composite, ts):
                if verify_frame(tile):
                    self.result.tiles_verified += 1
                else:
                    self.result.corrupt_tiles += 1
            connection.consume(ts, sync=False)

    def finish(self, timeout: float) -> ParticipantResult:
        """Join this device's threads and return what it saw."""
        for thread in self._threads:
            thread.join(timeout=timeout)
        self.client.close()
        return self.result


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConferenceResult:
    """Aggregate outcome of a conference run."""

    participants: List[ParticipantResult]
    frames: int

    @property
    def total_composites(self) -> int:
        """Composites received across all displays."""
        return sum(p.composites_received for p in self.participants)

    @property
    def all_verified(self) -> bool:
        """True when every expected tile verified with no errors."""
        expected_tiles = (len(self.participants) * self.frames
                          * len(self.participants))
        return (all(not p.errors and p.corrupt_tiles == 0
                    for p in self.participants)
                and sum(p.tiles_verified
                        for p in self.participants) == expected_tiles)


def run_conference(participants: int = 2, frames: int = 10,
                   image_size: int = 2_000, mixer_mode: str = "multi",
                   codec: str = "xdr",
                   timeout: float = 60.0) -> ConferenceResult:
    """Run a full conference end-to-end over real TCP and return what
    every display saw.  This is the §4 application as an integration
    harness: every frame of every participant is verified tile-by-tile.
    """
    server = ConferenceServer(participants, frames, mixer_mode=mixer_mode)
    members: List[ConferenceParticipant] = []
    try:
        host, port = server.address
        for participant in range(participants):
            member = ConferenceParticipant(
                participant, host, port, frames, image_size, codec=codec,
            )
            member.start()
            members.append(member)
        server.start_mixer()
        server.join_mixer(timeout=timeout)
        results = [member.finish(timeout=timeout) for member in members]
        return ConferenceResult(participants=results, frames=frames)
    finally:
        for member in members:
            try:
                member.client.close()
            except StampedeError:  # pragma: no cover - teardown raciness
                pass
        server.close()
