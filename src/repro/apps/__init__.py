"""Application library: the workloads the paper builds on D-Stampede.

* :mod:`.frames` — virtual cameras, frame encoding, compositing (the
  "abstract out the camera and display" methodology of §5.2);
* :mod:`.videoconf` — the §4 video-conferencing application on the real
  runtime: per-participant channels, a single- or multi-threaded mixer in
  its own address space, end devices joining over TCP;
* :mod:`.trackers` — the Figure 3 task-and-data-parallelism pattern:
  splitter / tracker pool over a queue / joiner;
* :mod:`.telepresence` — the §1 chat-room scenario: correlated
  audio+video avatars with cluster-side fusion.
"""

from repro.apps.frames import Frame, VirtualCamera, compose
from repro.apps.videoconf import ConferenceResult, run_conference
from repro.apps.trackers import TrackerFarm
from repro.apps.telepresence import Avatar, ChatRoomResult, run_chat_room

__all__ = [
    "Avatar",
    "ChatRoomResult",
    "ConferenceResult",
    "Frame",
    "TrackerFarm",
    "VirtualCamera",
    "compose",
    "run_chat_room",
    "run_conference",
]
