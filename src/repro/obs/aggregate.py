"""Merging observability snapshots across shard workers.

A sharded server is N processes, each with its own
:data:`~repro.obs.metrics.GLOBAL_METRICS` registry and its own runtime.
Dashboards and scrapers must see **one logical server** — "the server
library ... within an SMP" presents a single body to the tentacles — so
the shard that answers a STATS request folds its peers' snapshots into
its own with the functions here.

Merge rules per instrument kind:

* **counters** and **gauges** sum (every gauge the runtime exports —
  queue depths, started threads, live connections — is a per-process
  quantity whose cluster-wide meaning is the total);
* **histograms** merge bucket-wise when the bound ladders agree
  (they do: every process builds them from the same code), then the
  summary statistics (mean, p50/p95/p99) are recomputed from the merged
  buckets with the same linear interpolation
  :meth:`repro.obs.metrics.Histogram.percentile` uses, so a merged
  quantile is exactly what one process observing all the samples would
  have reported at bucket granularity;
* **probes** are histograms plus an ``ops`` tick estimate, which sums;
* **containers** concatenate — each container lives on exactly one
  shard, so the union is disjoint;
* **spaces** (GC reports) concatenate likewise, tagged with the shard
  that owns them.

Everything operates on the plain-JSON snapshot dicts that travel in the
STATS wire op, never on live registries, so the merge works identically
for in-process peers and remote ones.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "merge_histogram_snapshots",
    "merge_metrics_snapshots",
    "merge_stats_snapshots",
    "merge_span_sections",
    "merge_span_dumps",
    "merge_profile_dumps",
]


def _recompute_quantile(buckets: List[List[float]], overflow: int,
                        count: int, lo_min: float, hi_max: float,
                        q: float) -> float:
    """Bucket-interpolated quantile over a merged bucket list.

    Mirrors :meth:`repro.obs.metrics.Histogram.percentile`: linear
    interpolation inside the bucket holding the target rank, clamped to
    the merged [min, max].
    """
    if q == 0:
        return lo_min
    if q == 100:
        return hi_max
    target = (q / 100.0) * count
    cumulative = 0
    bounds = [b for b, _n in buckets]
    counts = [n for _b, n in buckets] + [overflow]
    for idx, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            lo = bounds[idx - 1] if idx else lo_min
            hi = bounds[idx] if idx < len(bounds) else hi_max
            lo = max(lo, lo_min)
            hi = min(hi, hi_max)
            if hi <= lo:
                return lo
            fraction = (target - cumulative) / bucket_count
            return lo + fraction * (hi - lo)
        cumulative += bucket_count
    return hi_max


def merge_histogram_snapshots(snaps: Sequence[Dict[str, Any]]
                              ) -> Dict[str, Any]:
    """Fold histogram snapshot dicts into one.

    All inputs must share a bucket ladder (same code built them); a
    snapshot with a different ladder is skipped rather than corrupting
    the merge — version skew between shards is a restart away, not a
    crash.
    """
    snaps = [s for s in snaps if s]
    if not snaps:
        return {}
    base = snaps[0]
    bounds = [b for b, _n in base.get("buckets", [])]
    merged_buckets = [[b, 0] for b in bounds]
    overflow = 0
    count = 0
    total = 0.0
    lo = float("inf")
    hi = float("-inf")
    for snap in snaps:
        if [b for b, _n in snap.get("buckets", [])] != bounds:
            continue  # incompatible ladder: skip, never corrupt
        for i, (_b, n) in enumerate(snap["buckets"]):
            merged_buckets[i][1] += n
        overflow += snap.get("overflow", 0)
        count += snap.get("count", 0)
        total += snap.get("total", 0.0)
        if snap.get("count"):
            lo = min(lo, snap["min"])
            hi = max(hi, snap["max"])
    merged: Dict[str, Any] = {
        "unit": base.get("unit", "us"),
        "count": count,
        "total": total,
        "buckets": merged_buckets,
        "overflow": overflow,
    }
    if count:
        merged.update(
            min=lo, max=hi, mean=total / count,
            p50=_recompute_quantile(merged_buckets, overflow, count,
                                    lo, hi, 50),
            p95=_recompute_quantile(merged_buckets, overflow, count,
                                    lo, hi, 95),
            p99=_recompute_quantile(merged_buckets, overflow, count,
                                    lo, hi, 99),
        )
    return merged


def _merge_probe_snapshots(snaps: Sequence[Dict[str, Any]]
                           ) -> Dict[str, Any]:
    merged = merge_histogram_snapshots(snaps)
    merged["ops"] = sum(s.get("ops", 0) for s in snaps if s)
    merged["sampled"] = merged.get("count", 0)
    merged["sample_every"] = next(
        (s["sample_every"] for s in snaps if s and "sample_every" in s), 64
    )
    return merged


def merge_metrics_snapshots(snaps: Sequence[Dict[str, Any]]
                            ) -> Dict[str, Any]:
    """Fold ``MetricsRegistry.snapshot()`` dicts into one registry view."""
    snaps = [s for s in snaps if s]
    if not snaps:
        return {}
    merged: Dict[str, Any] = {
        "enabled": any(s.get("enabled") for s in snaps),
        "monotonic": max(s.get("monotonic", 0.0) for s in snaps),
        "counters": {},
        "gauges": {},
        "histograms": {},
        "probes": {},
    }
    for snap in snaps:
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = (
                merged["counters"].get(name, 0) + value)
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][name] = merged["gauges"].get(name, 0.0) + value
    hist_names = {n for s in snaps for n in s.get("histograms", {})}
    for name in hist_names:
        merged["histograms"][name] = merge_histogram_snapshots(
            [s.get("histograms", {}).get(name) for s in snaps])
    probe_names = {n for s in snaps for n in s.get("probes", {})}
    for name in probe_names:
        merged["probes"][name] = _merge_probe_snapshots(
            [s.get("probes", {}).get(name) for s in snaps])
    collectors = [s["collectors"] for s in snaps if "collectors" in s]
    if collectors:
        # Collector payloads are free-form; keep each shard's verbatim.
        merged["collectors"] = {
            f"shard{i}": c for i, c in enumerate(collectors)
        } if len(collectors) > 1 else collectors[0]
    return merged


def merge_stats_snapshots(snaps: Sequence[Dict[str, Any]],
                          shard_ids: Optional[Sequence[int]] = None
                          ) -> Dict[str, Any]:
    """Fold full ``observability_snapshot`` payloads into one.

    *snaps* is ordered; ``shard_ids`` (parallel to it) labels each
    space/container entry with its owning shard so dashboards can show
    placement.  The merged payload gains a ``"shards"`` key with the
    participating shard count.
    """
    snaps = [s for s in snaps if s]
    if not snaps:
        return {}
    if shard_ids is None:
        shard_ids = list(range(len(snaps)))
    merged: Dict[str, Any] = {
        "runtime": snaps[0].get("runtime", ""),
        "monotonic": max(s.get("monotonic", 0.0) for s in snaps),
        "shards": len(snaps),
        "metrics": merge_metrics_snapshots(
            [s.get("metrics", {}) for s in snaps]),
        "spaces": [],
        "containers": [],
    }
    peer_links: Dict[str, Any] = {}
    for shard_id, snap in zip(shard_ids, snaps):
        for space in snap.get("spaces", []):
            entry = dict(space)
            entry["shard"] = shard_id
            merged["spaces"].append(entry)
        for container in snap.get("containers", []):
            entry = dict(container)
            entry["shard"] = shard_id
            merged["containers"].append(entry)
        if snap.get("peer_links"):
            # Per-shard transport of each dialled peer link ("shm" /
            # "tcp"); kept keyed by owning shard — unlike counters,
            # these are identities, not quantities to sum.
            peer_links[str(shard_id)] = dict(snap["peer_links"])
    if peer_links:
        merged["peer_links"] = peer_links
    span_sections = [s.get("spans") for s in snaps if s.get("spans")]
    if span_sections:
        merged["spans"] = merge_span_sections(span_sections)
    slo_sections = [s.get("slo") for s in snaps if s.get("slo")]
    if slo_sections:
        # Targets are declared identically in every shard process (same
        # env/config); status rows are disjoint because each channel
        # lives on exactly one shard.
        merged["slo"] = {
            "targets": slo_sections[0].get("targets", []),
            "status": [row for section in slo_sections
                       for row in section.get("status", [])],
            "breaches": sum(section.get("breaches", 0)
                            for section in slo_sections),
        }
    return merged


def merge_span_sections(sections: Sequence[Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Fold the ``"spans"`` STATS sections (hop/e2e histograms, no
    ring) of several processes into one.

    Hop offsets and e2e latencies merge bucket-wise per (hop, subject) /
    per subject — every process builds the same ladder — so the merged
    histograms answer "where did the time go" for items whose journeys
    crossed processes.
    """
    sections = [s for s in sections if s]
    if not sections:
        return {}
    merged: Dict[str, Any] = {
        "enabled": any(s.get("enabled") for s in sections),
        "recorded": sum(s.get("recorded", 0) for s in sections),
        "dropped": sum(s.get("dropped", 0) for s in sections),
        "hops": {},
        "e2e": {},
    }
    hop_names = {h for s in sections for h in s.get("hops", {})}
    for hop in hop_names:
        subjects = {subj for s in sections
                    for subj in s.get("hops", {}).get(hop, {})}
        merged["hops"][hop] = {
            subj: merge_histogram_snapshots(
                [s.get("hops", {}).get(hop, {}).get(subj)
                 for s in sections])
            for subj in subjects
        }
    e2e_subjects = {subj for s in sections for subj in s.get("e2e", {})}
    for subj in e2e_subjects:
        merged["e2e"][subj] = merge_histogram_snapshots(
            [s.get("e2e", {}).get(subj) for s in sections])
    return merged


def merge_span_dumps(payloads: Sequence[Dict[str, Any]],
                     labels: Optional[Sequence[str]] = None
                     ) -> Dict[str, Any]:
    """Fold full SPAN_DUMP payloads (histograms **and** span rings)
    across processes into one cluster timeline.

    Each span gains an ``origin_label`` naming the process it was
    recorded in; the combined ring is re-sorted by monotonic time,
    which interleaves correctly exactly when the processes share a
    monotonic clock (same host — the shard and loopback cases).
    """
    payloads = [p for p in payloads if p]
    if not payloads:
        return {}
    if labels is None:
        labels = [p.get("label") or f"proc{i}"
                  for i, p in enumerate(payloads)]
    merged = merge_span_sections(payloads)
    merged["label"] = "+".join(str(label) for label in labels)
    spans: List[Dict[str, Any]] = []
    for label, payload in zip(labels, payloads):
        for span in payload.get("spans", []):
            entry = dict(span)
            entry.setdefault("origin_label", str(label))
            spans.append(entry)
    spans.sort(key=lambda s: s.get("at", 0.0))
    merged["spans"] = spans
    return merged


def merge_profile_dumps(payloads: Sequence[Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Fold PROF_DUMP payloads into one collapsed-stack counter set.

    Stacks are function-granular strings, so the merge is exact
    addition per stack — the cluster flamegraph is the sum of the
    per-process flamegraphs.
    """
    payloads = [p for p in payloads if p]
    if not payloads:
        return {}
    samples: Dict[str, int] = {}
    for payload in payloads:
        for stack, count in payload.get("samples", {}).items():
            samples[stack] = samples.get(stack, 0) + int(count)
    return {
        "interval": max(p.get("interval", 0.0) for p in payloads),
        "running": any(p.get("running") for p in payloads),
        "sample_count": sum(p.get("sample_count", 0) for p in payloads),
        "samples": samples,
        "processes": len(payloads),
    }
