"""Stall watchdog: turns the flight-recorder signals into detections.

A ubiquitous-computing pipeline fails soft: a slow consumer does not
crash anything, it just quietly pins timestamps in a channel until the
producer blocks on capacity and the whole application "hangs".  The
watchdog watches the two leading indicators of that failure mode:

* **reactor loop lag** — a heartbeat timer on the event loop; when the
  beat arrives late, some callback is monopolising the loop (or the
  process is starved) and every connected device's I/O is delayed;
* **oldest live timestamp age** — per container, how long the oldest
  unreclaimed item has been held.  A breach means some consumer has
  stopped advancing its interest floor; the container itself names the
  suspect connections (``blocking_connections``).

Detections are emitted as structured :data:`~repro.util.trace.STALL`
trace events (so they land in the same merged timeline as the RPCs that
caused them), counted in the metrics registry, and optionally delivered
to an ``on_stall`` callback.

The module deliberately imports nothing from ``repro.core`` or
``repro.runtime`` — containers and runtimes are duck-typed — so the
instrumented hot paths can import :mod:`repro.obs` without a cycle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import GLOBAL_METRICS as _metrics
from repro.util import trace as tracepoints

_STALLS_DETECTED = _metrics.counter("obs.watchdog.stalls")
_CHECKS = _metrics.counter("obs.watchdog.checks")


@dataclass(frozen=True)
class Stall:
    """One detected stall.

    ``kind`` is ``"reactor_lag"`` (the event loop heartbeat arrived
    late) or ``"oldest_age"`` (a container's oldest live item exceeded
    its age limit).  ``measured`` and ``limit`` are both in seconds.
    ``suspects`` holds the blocking-connection descriptions the
    container reported — for an age stall, the consumers whose interest
    floors are pinning the oldest item.
    """

    kind: str
    subject: str
    measured: float
    limit: float
    suspects: List[Dict[str, Any]] = field(default_factory=list)

    def describe(self) -> str:
        """One-line human rendering."""
        who = ""
        if self.suspects:
            owners = ", ".join(
                str(s.get("owner") or f"conn-{s.get('connection_id')}")
                for s in self.suspects
            )
            who = f" (blocked by: {owners})"
        return (f"{self.kind} on {self.subject}: "
                f"{self.measured:.3f}s > {self.limit:.3f}s{who}")


class StallWatchdog:
    """Periodic detector for reactor lag and oldest-timestamp-age breaches.

    Parameters
    ----------
    runtime:
        Optional object with ``address_spaces()`` yielding spaces whose
        ``containers()`` yield containers (duck-typed; the real
        :class:`~repro.runtime.runtime.Runtime` fits).  Containers are
        probed via ``oldest_live_age()`` / ``blocking_connections()``.
    reactor:
        Optional event loop with ``call_every(interval, fn)`` and
        ``running``; when given, :meth:`watch_reactor` hangs a heartbeat
        off it and :meth:`check` flags a late beat as loop lag.
    max_loop_lag:
        Seconds of heartbeat lateness tolerated before a
        ``reactor_lag`` stall is reported.
    max_oldest_age:
        Seconds an item may stay live before an ``oldest_age`` stall is
        reported for its container.
    on_stall:
        Optional callback invoked once per detected :class:`Stall`.
        Exceptions from it are swallowed (a broken observer must not
        take down the observed).
    interval:
        Period of the background checker started by :meth:`start`, and
        of the reactor heartbeat.
    clock:
        Injectable monotonic clock — the simnet stall test drives
        ``check`` with a fake clock for determinism.
    slo:
        Optional :class:`repro.obs.slo.SloEngine` (duck-typed: anything
        with ``check(runtime=..., now=...) -> breaches`` whose breaches
        offer ``as_stall()``).  Each check folds the engine's current
        breaches into the detection pass as ``slo_breach`` stalls, so
        SLO violations ride the same trace/counter/``on_stall``
        delivery as reactor-lag and oldest-age stalls.
    """

    def __init__(self, runtime: Optional[Any] = None,
                 reactor: Optional[Any] = None,
                 max_loop_lag: float = 0.25,
                 max_oldest_age: float = 5.0,
                 on_stall: Optional[Callable[[Stall], None]] = None,
                 interval: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 slo: Optional[Any] = None) -> None:
        if max_loop_lag <= 0 or max_oldest_age <= 0:
            raise ValueError("stall limits must be positive")
        self.runtime = runtime
        self.reactor = reactor
        self.slo = slo
        self.max_loop_lag = max_loop_lag
        self.max_oldest_age = max_oldest_age
        self.on_stall = on_stall
        self.interval = interval
        self._clock = clock
        self._beat_interval = interval
        self._last_beat: Optional[float] = None
        self._watching_reactor = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Every stall ever detected, newest last (bounded by callers
        #: clearing it; detections are rare by construction).
        self.stalls: List[Stall] = []

    # -- reactor heartbeat --------------------------------------------------

    def watch_reactor(self) -> None:
        """Arm the loop-lag detector: a heartbeat timer on the reactor.

        The beat runs *on* the loop, so a callback that monopolises the
        loop delays the beat — which is exactly the condition being
        detected.  Idempotent.
        """
        if self.reactor is None or self._watching_reactor:
            return
        self._watching_reactor = True
        self._last_beat = self._clock()
        self.reactor.call_every(self._beat_interval, self._beat)

    def _beat(self) -> None:
        self._last_beat = self._clock()

    def beat(self) -> None:
        """Record a heartbeat manually (tests; loops other than Reactor)."""
        self._last_beat = self._clock()

    # -- checking -----------------------------------------------------------

    def check(self, now: Optional[float] = None) -> List[Stall]:
        """Run one detection pass; returns the stalls found (may be [])."""
        if now is None:
            now = self._clock()
        _CHECKS.value += 1
        found: List[Stall] = []
        if self._last_beat is not None:
            # Lag = how much later than scheduled the next beat is.  One
            # whole beat interval of silence is normal (the beat is
            # periodic); anything past interval + max_loop_lag means the
            # loop could not run a trivial timer on time.
            lag = now - self._last_beat - self._beat_interval
            if lag > self.max_loop_lag:
                found.append(Stall(
                    kind="reactor_lag",
                    subject=getattr(self.reactor, "_name", "reactor"),
                    measured=lag,
                    limit=self.max_loop_lag,
                ))
        if self.runtime is not None:
            for space in self.runtime.address_spaces():
                for container in space.containers():
                    found.extend(self._check_container(container, now))
        if self.slo is not None:
            try:
                breaches = self.slo.check(runtime=self.runtime, now=now)
            except Exception:  # noqa: BLE001 - observer must not harm
                breaches = []
            found.extend(breach.as_stall() for breach in breaches)
        for stall in found:
            self._emit(stall)
        return found

    def _check_container(self, container: Any,
                         now: float) -> List[Stall]:
        try:
            age = container.oldest_live_age(now=now)
        except Exception:  # noqa: BLE001 - racing destroy()
            return []
        if age is None or age <= self.max_oldest_age:
            return []
        try:
            suspects = container.blocking_connections()
        except Exception:  # noqa: BLE001 - racing destroy()
            suspects = []
        return [Stall(
            kind="oldest_age",
            subject=container.name,
            measured=age,
            limit=self.max_oldest_age,
            suspects=suspects,
        )]

    def _emit(self, stall: Stall) -> None:
        self.stalls.append(stall)
        _STALLS_DETECTED.value += 1
        tracepoints.trace(
            tracepoints.STALL, stall.subject,
            kind=stall.kind,
            measured=round(stall.measured, 6),
            limit=stall.limit,
            suspects=[s.get("owner") or s.get("connection_id")
                      for s in stall.suspects],
        )
        if self.on_stall is not None:
            try:
                self.on_stall(stall)
            except Exception:  # noqa: BLE001 - observer must not harm
                pass

    # -- background operation ----------------------------------------------

    def start(self) -> "StallWatchdog":
        """Run :meth:`check` every ``interval`` s on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self.watch_reactor()
        self._thread = threading.Thread(
            target=self._run, name="dstampede-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background checker (the reactor heartbeat, if armed,
        dies with the reactor)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.interval):
            try:
                self.check()
            except Exception:  # noqa: BLE001 - watchdog must survive
                pass

    def __enter__(self) -> "StallWatchdog":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
