"""Item provenance spans: per-hop latency accounting for every item.

The paper's pitch is temporal correlation of streams across address
spaces; after sharding and the massive-fanout client nobody could answer
the production question *"how stale is the frame a consumer just got,
and where did the time go?"*.  Spans answer it: every item carries a
compact **origin stamp** — the monotonic time of the client-side ``put``
call, piggybacked on the request frame's optional trailing envelope
(old frames parse unchanged) — and every hop of the item's journey
records a span::

    client_put -> coalescer_flush -> lane_dequeue -> container_insert
               -> shard_forward -> consume -> gc_reclaim

A span is ``(at, hop, subject, offset_us, trace_id)`` where ``offset_us``
is the time since the origin stamp — the item's age when it reached that
hop.  Per ``(hop, subject)`` the recorder keeps an offset histogram, and
per subject a true end-to-end **information latency** histogram observed
at each consume; :func:`journey_breakdown` turns the hop histograms into
"where did the millisecond go": the hop whose offset *increment* is the
largest is where the time went.

Cost model mirrors :mod:`repro.util.trace`: disabled, every hop costs
one attribute read.  Enabled, **stamped** operations (an origin rode the
wire — they are RPC-driven and already paid for a socket) always record;
unstamped local churn is sampled 1-in-:data:`SAMPLE_MASK`+1.

Origin stamps are monotonic clock readings, so cross-space offsets are
meaningful exactly when the spaces share a monotonic clock — processes
on one host, the simnet, co-host shard workers — the same validity rule
as :meth:`repro.util.trace.Tracer.merge`.

Enable with ``DSTAMPEDE_SPANS=1`` or :func:`enable_spans`.  The ring
travels over the wire via the ``SPAN_DUMP`` op; cross-shard merging
lives in :mod:`repro.obs.aggregate`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import LATENCY_US_BOUNDS, Histogram
from repro.util import trace as tracepoints

__all__ = [
    "CLIENT_PUT",
    "COALESCER_FLUSH",
    "LANE_DEQUEUE",
    "CONTAINER_INSERT",
    "SHARD_FORWARD",
    "CONSUME",
    "GC_RECLAIM",
    "HOP_ORDER",
    "SpanRecorder",
    "GLOBAL_SPANS",
    "enable_spans",
    "disable_spans",
    "set_context",
    "current_entry",
    "current_origin",
    "origin_context",
    "journey_breakdown",
    "render_timeline",
]

# -- hop names (the item's journey, in order) ---------------------------------

CLIENT_PUT = "client_put"          #: the application called put()
COALESCER_FLUSH = "coalescer_flush"  #: the cast batch left the client
LANE_DEQUEUE = "lane_dequeue"      #: a server lane started executing it
CONTAINER_INSERT = "container_insert"  #: the item landed in its container
SHARD_FORWARD = "shard_forward"    #: it crossed a shard peer link
CONSUME = "consume"                #: a consumer declared it done
GC_RECLAIM = "gc_reclaim"          #: the collector reclaimed it

#: Canonical journey order, used by :func:`journey_breakdown` to compute
#: per-hop increments.  ``shard_forward`` sits between the lane and the
#: insert because a forwarded put leaves the accepting shard's lane
#: before it can land in the owner shard's container.
HOP_ORDER: Tuple[str, ...] = (
    CLIENT_PUT, COALESCER_FLUSH, LANE_DEQUEUE, SHARD_FORWARD,
    CONTAINER_INSERT, CONSUME, GC_RECLAIM,
)

#: Sampling mask for *unstamped* hot-path spans (a local put with no
#: origin on the wire).  Stamped operations always record — that is the
#: end-to-end guarantee — matching :data:`repro.util.trace.SAMPLE_MASK`.
SAMPLE_MASK = 63

#: Distinct subjects tracked per recorder before new ones collapse into
#: one overflow bucket — bounds memory when an app churns container names.
MAX_SUBJECTS = 512

_OVERFLOW_SUBJECT = "__other__"


# -- origin-stamp context ------------------------------------------------------

# Thread-local (origin, subject) carried from the client library's put()
# down to the RPC encode, and on the server from the surrogate's request
# decode down to the container insert — so hop sites never thread the
# stamp through their signatures (the same design as trace-id context).
#
# The class-level ``entry = None`` default matters: threads that never
# bound a stamp (every local producer) read the class attribute in
# ~100ns, where a bare ``threading.local()`` would pay getattr's
# internal AttributeError on every hot-path check (~5x slower — enough
# to fail the 5% overhead gate by itself).
class _SpanContext(threading.local):
    entry: Optional[Tuple[float, str]] = None


_context = _SpanContext()


def set_context(entry: Optional[Tuple[float, str]]
                ) -> Optional[Tuple[float, str]]:
    """Bind an ``(origin, subject)`` stamp to this thread; returns the
    previous binding."""
    prior = _context.entry
    _context.entry = entry
    return prior


def current_entry() -> Optional[Tuple[float, str]]:
    """The ``(origin, subject)`` stamp bound to this thread, or None."""
    return _context.entry


def current_origin() -> float:
    """The origin stamp bound to this thread, or ``0.0``."""
    entry = _context.entry
    return entry[0] if entry is not None else 0.0


@contextmanager
def origin_context(origin: float, subject: str) -> Iterator[None]:
    """Scope an origin stamp to a ``with`` block."""
    prior = set_context((origin, subject))
    try:
        yield
    finally:
        set_context(prior)


class SpanRecorder:
    """Per-process span ring plus per-hop / per-subject offset histograms.

    Parameters
    ----------
    capacity:
        Spans retained in the ring; older ones fall off.  The hop and
        e2e histograms are cumulative and unaffected by ring overflow.
    enabled:
        Start recording immediately (disabled recorders cost one
        attribute read per hop site).
    clock:
        Injectable monotonic clock — the simnet localization test drives
        the recorder deterministically.
    """

    def __init__(self, capacity: int = 8192, enabled: bool = False,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._clock = clock
        self._ring: Deque[tuple] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0
        #: (hop, subject) -> offset Histogram (µs since origin stamp).
        self._hops: Dict[Tuple[str, str], Histogram] = {}
        #: subject -> end-to-end information-latency Histogram, observed
        #: at every consume of a stamped item.
        self._e2e: Dict[str, Histogram] = {}

    # -- recording -------------------------------------------------------------

    def record(self, hop: str, subject: str, origin: float,
               at: Optional[float] = None,
               trace_id: Optional[str] = None) -> None:
        """Record one hop span (no-op while disabled).

        ``origin`` is the item's origin stamp (monotonic seconds); the
        span's offset is ``at - origin``.  ``at`` defaults to now; the
        thread's trace id is attached automatically when tracing is on.
        """
        if not self.enabled:
            return
        if at is None:
            at = self._clock()
        if trace_id is None and tracepoints.ACTIVE_IDS[0]:
            trace_id = tracepoints.current_trace_id()
        offset_us = (at - origin) * 1e6 if origin else 0.0
        if offset_us < 0.0:
            offset_us = 0.0  # clock skew across hosts: clamp, never lie big
        with self._lock:
            self._ring.append((at, hop, subject, offset_us, trace_id))
            self._recorded += 1
        self._hop_hist(hop, subject).observe(offset_us)

    def consume_span(self, subject: str, origin: float,
                     at: Optional[float] = None,
                     trace_id: Optional[str] = None) -> None:
        """Record the consume hop **and** the subject's e2e latency."""
        if not self.enabled:
            return
        if at is None:
            at = self._clock()
        self.record(CONSUME, subject, origin, at=at, trace_id=trace_id)
        if origin:
            self._e2e_hist(subject).observe(
                max(0.0, (at - origin) * 1e6))

    def _hop_hist(self, hop: str, subject: str) -> Histogram:
        key = (hop, subject)
        hist = self._hops.get(key)
        if hist is None:
            with self._lock:
                hist = self._hops.get(key)
                if hist is None:
                    if len(self._hops) >= MAX_SUBJECTS * len(HOP_ORDER):
                        key = (hop, _OVERFLOW_SUBJECT)
                        hist = self._hops.get(key)
                        if hist is not None:
                            return hist
                    hist = self._hops[key] = Histogram(
                        f"spans.hop.{hop}.{key[1]}",
                        bounds=LATENCY_US_BOUNDS, unit="us")
        return hist

    def _e2e_hist(self, subject: str) -> Histogram:
        hist = self._e2e.get(subject)
        if hist is None:
            with self._lock:
                hist = self._e2e.get(subject)
                if hist is None:
                    if len(self._e2e) >= MAX_SUBJECTS:
                        subject = _OVERFLOW_SUBJECT
                        hist = self._e2e.get(subject)
                        if hist is not None:
                            return hist
                    hist = self._e2e[subject] = Histogram(
                        f"spans.e2e.{subject}",
                        bounds=LATENCY_US_BOUNDS, unit="us")
        return hist

    # -- lifecycle -------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop the ring and every histogram."""
        with self._lock:
            self._ring.clear()
            self._recorded = 0
            self._hops.clear()
            self._e2e.clear()

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    @property
    def dropped(self) -> int:
        """Spans that fell off the full ring (histograms saw them all)."""
        with self._lock:
            return self._recorded - len(self._ring)

    # -- export ----------------------------------------------------------------

    def export(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """JSON-able dicts of the newest *limit* spans (all when None)."""
        with self._lock:
            entries = list(self._ring)
        if limit is not None:
            entries = entries[-limit:]
        out: List[Dict[str, Any]] = []
        for at, hop, subject, offset_us, trace_id in entries:
            span: Dict[str, Any] = {
                "at": at, "hop": hop, "subject": subject,
                "offset_us": round(offset_us, 3),
            }
            if trace_id:
                span["trace_id"] = trace_id
            out.append(span)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """The STATS-embedded view: histograms only (no ring — it can be
        large; the ring travels via SPAN_DUMP)."""
        with self._lock:
            hop_items = list(self._hops.items())
            e2e_items = list(self._e2e.items())
            recorded = self._recorded
            dropped = self._recorded - len(self._ring)
        hops: Dict[str, Dict[str, Any]] = {}
        for (hop, subject), hist in hop_items:
            if hist.count:
                hops.setdefault(hop, {})[subject] = hist.snapshot()
        return {
            "enabled": self.enabled,
            "recorded": recorded,
            "dropped": dropped,
            "hops": hops,
            "e2e": {subject: hist.snapshot()
                    for subject, hist in e2e_items if hist.count},
        }

    def dump_payload(self, label: str = "",
                     limit: Optional[int] = None) -> Dict[str, Any]:
        """The SPAN_DUMP wire payload: snapshot plus the span ring."""
        payload = self.snapshot()
        payload["label"] = label
        payload["spans"] = self.export(limit=limit)
        return payload


#: The process-global recorder every hop site reports into.
GLOBAL_SPANS = SpanRecorder(
    enabled=os.environ.get("DSTAMPEDE_SPANS", "") not in ("", "0"))


def enable_spans(capacity: Optional[int] = None) -> SpanRecorder:
    """Turn on the process-global recorder (optionally resizing) and
    return it for inspection.

    The recorder object is mutated in place, never rebound — hot-path
    instrumentation caches a reference to it at import time.
    """
    if capacity is not None and capacity != GLOBAL_SPANS.capacity:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        with GLOBAL_SPANS._lock:
            GLOBAL_SPANS.capacity = capacity
            GLOBAL_SPANS._ring = deque(GLOBAL_SPANS._ring,
                                       maxlen=capacity)
    GLOBAL_SPANS.enable()
    return GLOBAL_SPANS


def disable_spans() -> None:
    """Turn off the process-global recorder."""
    GLOBAL_SPANS.disable()


# A forked shard worker inherits the recorder mid-mutation: the parent's
# lane/GC threads may hold its lock at the fork instant and never exist
# in the child to release it.  Fresh lock, empty ring.
if hasattr(os, "register_at_fork"):  # pragma: no branch - always on Linux
    def _reinit_after_fork() -> None:
        recorder = GLOBAL_SPANS
        recorder._lock = threading.Lock()
        recorder._ring = deque(maxlen=recorder.capacity)
        recorder._recorded = 0
        recorder._hops = {}
        recorder._e2e = {}

    os.register_at_fork(after_in_child=_reinit_after_fork)


# -- analysis ------------------------------------------------------------------


def journey_breakdown(snapshot: Dict[str, Any]
                      ) -> Dict[str, Dict[str, Any]]:
    """"Where did the time go", per subject, from a spans snapshot.

    For each subject, orders the hop offset medians along
    :data:`HOP_ORDER` and computes each hop's **increment** over the
    previous hop; the hop with the largest increment is where the item
    spent its time.  Works on a single process's snapshot or on the
    merged cross-shard payload :func:`repro.obs.aggregate.merge_span_dumps`
    produces.
    """
    hops = snapshot.get("hops", {})
    subjects = {subject
                for per_subject in hops.values()
                for subject in per_subject}
    out: Dict[str, Dict[str, Any]] = {}
    for subject in sorted(subjects):
        seq: List[Tuple[str, float]] = []
        for hop in HOP_ORDER:
            hist = hops.get(hop, {}).get(subject)
            if hist and hist.get("count"):
                seq.append((hop, float(hist.get("p50", 0.0))))
        if not seq:
            continue
        increments: List[Tuple[str, float]] = []
        prev = 0.0
        for hop, offset in seq:
            increments.append((hop, max(0.0, offset - prev)))
            prev = max(prev, offset)
        slowest_hop, slowest_delta = max(increments, key=lambda p: p[1])
        out[subject] = {
            "hops": seq,
            "increments": increments,
            "slowest_hop": slowest_hop,
            "slowest_delta_us": slowest_delta,
            "e2e_p50_us": seq[-1][1],
        }
    return out


def render_timeline(spans: List[Dict[str, Any]]) -> str:
    """Human-readable chronological rendering of exported span dicts.

    Accepts one process's :meth:`SpanRecorder.export` output or the
    merged ``spans`` list of a cross-shard SPAN_DUMP (whose entries
    carry an ``origin_label``).
    """
    if not spans:
        return "(no spans)"
    ordered = sorted(spans, key=lambda s: s.get("at", 0.0))
    base = ordered[0].get("at", 0.0)
    lines = []
    for span in ordered:
        offset_ms = (span.get("at", 0.0) - base) * 1e3
        age_ms = span.get("offset_us", 0.0) / 1e3
        line = (f"[{offset_ms:10.3f}ms] {span.get('hop', '?'):<17} "
                f"{span.get('subject', '?'):<24} age={age_ms:9.3f}ms")
        if span.get("trace_id"):
            line += f" <{span['trace_id']}>"
        if span.get("origin_label"):
            line = f"{span['origin_label']:<10} {line}"
        lines.append(line)
    return "\n".join(lines)
