"""Lock-cheap metrics: counters, gauges, fixed-bucket histograms.

Interactive stream systems fail in time-dependent ways, so the runtime
needs numbers that are cheap enough to leave compiled into the hot
paths.  Three cost tiers:

* **Disabled** (the default): every instrumented site pays one
  attribute read (``registry.enabled`` or ``probe.enabled``) and a
  falsy branch — unmeasurable against a microsecond-scale operation.
* **Enabled, cold path** (GC sweeps, RPC dispatch, flush decisions):
  plain ``Counter.inc`` / ``Histogram.observe`` calls.  These sites run
  thousands of times per second at most; a dict-free attribute
  increment is fine.
* **Enabled, hot path** (channel/queue put/get/consume, which run at
  hundreds of thousands of ops per second): an :class:`OpProbe` —
  a GIL-tolerant unlocked tick counter plus a *sampled* latency
  histogram.  Only one operation in ``sample_every`` (default 64) pays
  the two ``time.monotonic`` calls and the bucket insert; the rest pay
  a counter increment and a mask test.

Counters are deliberately unlocked: CPython's GIL makes ``x.value += 1``
lose updates only across a preemption between the read and the store,
which for monitoring counters means an occasional off-by-one, not
corruption — the same trade :mod:`repro.util.trace` makes for its
``enabled`` flag.  Snapshots are therefore *consistent enough*, never
torn (ints and floats swap atomically).

Histogram percentiles mirror :func:`repro.util.stats.percentile`
(linear interpolation) at bucket granularity: the reported quantile is
interpolated inside the bucket that holds the target rank, clamped to
the observed min/max.

Enable globally with ``DSTAMPEDE_METRICS=1`` in the environment, or
programmatically via :func:`enable_metrics`.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "OpProbe",
    "MetricsRegistry",
    "GLOBAL_METRICS",
    "enable_metrics",
    "disable_metrics",
    "LATENCY_US_BOUNDS",
    "COUNT_BOUNDS",
]

#: Default buckets for microsecond latencies: a 1-2-5 decade ladder from
#: 1µs to 1s.  Anything slower lands in the overflow bucket.
LATENCY_US_BOUNDS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
    100_000, 200_000, 500_000, 1_000_000,
)

#: Default buckets for small cardinalities (batch sizes, ready sets).
COUNT_BOUNDS: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """A monotonically increasing count.

    ``value`` is public and unlocked on purpose: hot sites increment it
    inline (``c.value += 1``) without a method call.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: either set explicitly or read lazily.

    A gauge constructed with a callable is a *collector*: it is invoked
    at snapshot time, so tracking it costs nothing between snapshots
    (used for channel occupancy and oldest-live age).
    """

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.read()})"


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    Bucket *i* counts observations ``v <= bounds[i]``; one extra
    overflow bucket counts everything above the last bound.  Bounds are
    fixed at construction so ``observe`` is a single ``bisect`` plus a
    list-index increment — no allocation, no lock.
    """

    __slots__ = ("name", "unit", "bounds", "buckets",
                 "count", "total", "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = LATENCY_US_BOUNDS,
                 unit: str = "us") -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"bucket bounds must be strictly increasing: {bounds!r}")
        self.name = name
        self.unit = unit
        self.bounds = ordered
        self.buckets = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """Bucket-interpolated quantile, ``0 <= q <= 100``.

        Mirrors :func:`repro.util.stats.percentile` (linear
        interpolation between neighbouring ranks) at the resolution the
        buckets allow; exact for q=0/q=100 (observed min/max).
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        if q == 0:
            return self.min
        if q == 100:
            return self.max
        target = (q / 100.0) * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                # Interpolate inside this bucket, clamped to what was
                # actually observed so sparse data cannot report a
                # quantile outside [min, max].
                lo = self.bounds[idx - 1] if idx else self.min
                hi = (self.bounds[idx] if idx < len(self.bounds)
                      else self.max)
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                fraction = (target - cumulative) / bucket_count
                return lo + fraction * (hi - lo)
            cumulative += bucket_count
        return self.max  # unreachable, but keeps the checker honest

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        for i in range(len(self.buckets)):
            self.buckets[i] = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "unit": self.unit,
            "count": self.count,
            "total": self.total,
            "buckets": [[bound, self.buckets[i]]
                        for i, bound in enumerate(self.bounds)],
            "overflow": self.buckets[-1],
        }
        if self.count:
            snap.update(
                min=self.min, max=self.max, mean=self.mean,
                p50=self.percentile(50), p95=self.percentile(95),
                p99=self.percentile(99),
            )
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class OpProbe:
    """Hot-path instrument: an op counter plus a sampled latency histogram.

    Sites that already maintain a per-op counter (the containers count
    puts/gets/consumes regardless) piggyback on it, and the enabled state
    is folded into :attr:`mask` — ``-1`` while disabled, so the test can
    never fire — making the cycle-critical pattern one masked compare
    with no separate enabled check::

        t0 = 0.0
        if not (self._ops + 1) & probe.mask:   # mask is -1 when off
            probe.tick += probe.mask + 1       # amortised op estimate
            t0 = time.monotonic()
        ...                                    # the operation
        if t0:
            probe.hist.observe((time.monotonic() - t0) * 1e6)

    Only every ``sample_every``-th call pays for clock reads and a
    bucket insert; ``tick`` then advances by ``sample_every``, making
    the probe's op count an estimate accurate to one sampling window.
    Sites without a counter of their own (RPC dispatch, where the op
    itself costs microseconds) use :meth:`start`/:meth:`stop`, which
    keep ``tick`` exact.  Toggle via :meth:`set_enabled` (the owning
    registry mirrors its own flag there) so ``mask`` stays in sync.
    """

    __slots__ = ("name", "enabled", "tick", "mask", "sample_every",
                 "hist")

    def __init__(self, name: str, hist: Histogram,
                 sample_every: int = 64, enabled: bool = False) -> None:
        if sample_every < 1 or sample_every & (sample_every - 1):
            raise ValueError(
                f"sample_every must be a power of two, got {sample_every}")
        self.name = name
        self.sample_every = sample_every
        self.tick = 0
        self.hist = hist
        self.set_enabled(enabled)

    def set_enabled(self, enabled: bool) -> None:
        """Flip the probe on or off, keeping ``mask`` consistent."""
        self.enabled = enabled
        self.mask = self.sample_every - 1 if enabled else -1

    # Convenience wrappers for sites that are not cycle-critical.
    def start(self) -> float:
        if self.enabled:
            self.tick = t = self.tick + 1
            if not t & self.mask:
                return time.monotonic()
        return 0.0

    def stop(self, t0: float) -> None:
        if t0:
            self.hist.observe((time.monotonic() - t0) * 1e6)

    def reset(self) -> None:
        self.tick = 0
        self.hist.reset()

    def snapshot(self) -> Dict[str, Any]:
        snap = self.hist.snapshot()
        snap["ops"] = self.tick
        snap["sample_every"] = self.sample_every
        snap["sampled"] = self.hist.count
        return snap


class MetricsRegistry:
    """Named instruments plus an enabled flag the instruments mirror.

    ``counter``/``gauge``/``histogram``/``probe`` are get-or-create and
    idempotent, so modules can declare their instruments at import time
    regardless of import order.  The registry lock guards only the name
    tables — never the instruments' own mutation, which stays unlocked
    by design (see the module docstring).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._probes: Dict[str, OpProbe] = {}
        self._collectors: Dict[str, Callable[[], Any]] = {}

    # -- instrument registration ----------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, fn)
            elif fn is not None:
                inst.fn = fn
            return inst

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_US_BOUNDS,
                  unit: str = "us") -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(
                    name, bounds=bounds, unit=unit)
            return inst

    def probe(self, name: str, sample_every: int = 64,
              bounds: Sequence[float] = LATENCY_US_BOUNDS) -> OpProbe:
        with self._lock:
            inst = self._probes.get(name)
            if inst is None:
                hist = Histogram(f"{name}_us", bounds=bounds, unit="us")
                inst = self._probes[name] = OpProbe(
                    name, hist, sample_every=sample_every,
                    enabled=self.enabled)
            return inst

    def add_collector(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a lazy data source invoked only at snapshot time."""
        with self._lock:
            self._collectors[name] = fn

    def remove_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -- lifecycle -------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True
        with self._lock:
            for probe in self._probes.values():
                probe.set_enabled(True)

    def disable(self) -> None:
        self.enabled = False
        with self._lock:
            for probe in self._probes.values():
                probe.set_enabled(False)

    def reset(self) -> None:
        """Zero every instrument (collectors are left registered)."""
        with self._lock:
            instruments: List[Any] = (
                list(self._counters.values()) + list(self._gauges.values())
                + list(self._histograms.values())
                + list(self._probes.values()))
        for inst in instruments:
            inst.reset()

    # -- export ----------------------------------------------------------------

    def snapshot(self, include_collectors: bool = True) -> Dict[str, Any]:
        """A plain-dict, JSON-able view of every instrument."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            probes = list(self._probes.values())
            collectors = list(self._collectors.items())
        snap: Dict[str, Any] = {
            "enabled": self.enabled,
            "monotonic": time.monotonic(),
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.read() for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms
                           if h.count},
            "probes": {p.name: p.snapshot() for p in probes if p.tick},
        }
        if include_collectors:
            collected: Dict[str, Any] = {}
            for name, fn in collectors:
                try:
                    collected[name] = fn()
                except Exception as exc:  # a dying source must not kill STATS
                    collected[name] = {"error": repr(exc)}
            snap["collectors"] = collected
        return snap


#: The process-global registry every runtime instrument reports into.
GLOBAL_METRICS = MetricsRegistry(
    enabled=os.environ.get("DSTAMPEDE_METRICS", "") not in ("", "0"))


def enable_metrics() -> MetricsRegistry:
    """Turn on the process-global registry and return it."""
    GLOBAL_METRICS.enable()
    return GLOBAL_METRICS


def disable_metrics() -> None:
    """Turn off the process-global registry."""
    GLOBAL_METRICS.disable()
