"""Prometheus text-format rendering of a metrics-registry snapshot.

No client library, no HTTP server — just the exposition format
(`# TYPE` lines, cumulative ``le`` buckets, ``_sum``/``_count``), so a
scrape endpoint is one ``BaseHTTPRequestHandler`` away and tests can
assert on plain text.  Works from a live
:class:`~repro.obs.metrics.MetricsRegistry` or from the JSON snapshot
the STATS wire op returns, which is how ``tools/top.py --prom`` exports
a *remote* cluster's metrics without running anything on it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import GLOBAL_METRICS, MetricsRegistry


def _sanitize(name: str) -> str:
    """Dots and dashes to underscores: registry names are hierarchical
    (``core.channel.put``), Prometheus names are flat."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _render_histogram(name: str, snap: Mapping[str, Any],
                      lines: List[str]) -> None:
    base = _sanitize(name)
    lines.append(f"# TYPE {base} histogram")
    cumulative = 0
    for bound, count in snap["buckets"]:
        cumulative += count
        lines.append(
            f'{base}_bucket{{le="{_format_value(float(bound))}"}} '
            f"{cumulative}"
        )
    cumulative += snap["overflow"]
    lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{base}_sum {_format_value(snap['total'])}")
    lines.append(f"{base}_count {snap['count']}")


def render(source: Optional[Union[MetricsRegistry,
                                  Mapping[str, Any]]] = None) -> str:
    """Render *source* as Prometheus exposition text.

    *source* may be a :class:`MetricsRegistry` (snapshotted here), an
    already-taken ``registry.snapshot()`` dict (e.g. the ``metrics``
    field of a remote STATS payload), or ``None`` for the process-global
    registry.
    """
    if source is None:
        source = GLOBAL_METRICS
    snap: Mapping[str, Any]
    if isinstance(source, MetricsRegistry):
        snap = source.snapshot(include_collectors=False)
    else:
        snap = source
    lines: List[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        base = _sanitize(name)
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_format_value(value)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        base = _sanitize(name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format_value(value)}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        _render_histogram(name, hist, lines)
    for name, probe in sorted(snap.get("probes", {}).items()):
        # A probe is an op counter plus a *sampled* latency histogram;
        # export both, with the sampling made explicit so nobody reads
        # the histogram count as a request count.
        base = _sanitize(name)
        lines.append(f"# TYPE {base}_ops counter")
        lines.append(f"{base}_ops {probe['ops']}")
        _render_histogram(f"{name}_sampled_us", probe, lines)
    return "\n".join(lines) + "\n" if lines else ""
