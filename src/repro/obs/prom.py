"""Prometheus text-format rendering of a metrics-registry snapshot.

No client library, no HTTP server — just the exposition format
(`# HELP`/`# TYPE` lines, cumulative ``le`` buckets, ``_sum``/
``_count``), so a scrape endpoint is one ``BaseHTTPRequestHandler``
away and tests can assert on plain text.  Works from a live
:class:`~repro.obs.metrics.MetricsRegistry`, from the ``metrics`` field
of the JSON snapshot the STATS wire op returns, or from the **whole**
STATS payload — in which case the per-channel end-to-end information-
latency histograms (the span pipeline's headline number) and the SLO
engine's burn-rate/breach series are exported too, with the channel
name as a properly escaped label value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import GLOBAL_METRICS, MetricsRegistry


def _sanitize(name: str) -> str:
    """Dots and dashes to underscores: registry names are hierarchical
    (``core.channel.put``), Prometheus names are flat."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: Any) -> str:
    """Escape a label *value* per the exposition format: backslash,
    double-quote and newline are the three characters with escapes."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Optional[Mapping[str, Any]],
                   extra: Optional[Dict[str, str]] = None) -> str:
    pairs: List[str] = []
    for key, value in (labels or {}).items():
        pairs.append(f'{_sanitize(key)}="{_escape_label(value)}"')
    for key, value in (extra or {}).items():
        pairs.append(f'{key}="{value}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _render_histogram(name: str, snap: Mapping[str, Any],
                      lines: List[str],
                      labels: Optional[Mapping[str, Any]] = None,
                      help_text: Optional[str] = None) -> None:
    base = _sanitize(name)
    unit = snap.get("unit", "")
    lines.append(f"# HELP {base} "
                 f"{help_text or f'{name} distribution'}"
                 f"{f' ({unit})' if unit else ''}")
    lines.append(f"# TYPE {base} histogram")
    cumulative = 0
    for bound, count in snap["buckets"]:
        cumulative += count
        label_str = _format_labels(
            labels, {"le": _format_value(float(bound))})
        lines.append(f"{base}_bucket{label_str} {cumulative}")
    cumulative += snap["overflow"]
    label_str = _format_labels(labels, {"le": "+Inf"})
    lines.append(f"{base}_bucket{label_str} {cumulative}")
    # The exposition format implies _sum/_count from the histogram
    # family, but scrapers that treat each series independently (and
    # humans reading the page) get no typing for them — so they carry
    # their own HELP/TYPE, like the bucket series do.
    plain = _format_labels(labels)
    lines.append(f"# HELP {base}_sum total of observed {name} values")
    lines.append(f"# TYPE {base}_sum counter")
    lines.append(f"{base}_sum{plain} {_format_value(snap['total'])}")
    lines.append(f"# HELP {base}_count number of observed {name} values")
    lines.append(f"# TYPE {base}_count counter")
    lines.append(f"{base}_count{plain} {snap['count']}")


def _render_metrics(snap: Mapping[str, Any], lines: List[str]) -> None:
    for name, value in sorted(snap.get("counters", {}).items()):
        base = _sanitize(name)
        lines.append(f"# HELP {base} {name} (counter)")
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_format_value(value)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        base = _sanitize(name)
        lines.append(f"# HELP {base} {name} (gauge)")
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format_value(value)}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        _render_histogram(name, hist, lines)
    for name, probe in sorted(snap.get("probes", {}).items()):
        # A probe is an op counter plus a *sampled* latency histogram;
        # export both, with the sampling made explicit so nobody reads
        # the histogram count as a request count.
        base = _sanitize(name)
        lines.append(f"# HELP {base}_ops total {name} operations")
        lines.append(f"# TYPE {base}_ops counter")
        lines.append(f"{base}_ops {probe['ops']}")
        _render_histogram(f"{name}_sampled_us", probe, lines)


def _render_spans(section: Mapping[str, Any], lines: List[str]) -> None:
    """Per-channel e2e information latency, channel as a label."""
    for channel, hist in sorted(section.get("e2e", {}).items()):
        _render_histogram(
            "dstampede_e2e_latency_us", hist, lines,
            labels={"channel": channel},
            help_text="end-to-end information latency from first put "
                      "to consume")


def _render_slo(section: Mapping[str, Any], lines: List[str]) -> None:
    """SLO burn rates and breach flags, (channel, objective) labeled."""
    status = section.get("status", [])
    if status:
        lines.append("# HELP dstampede_slo_burn_rate error-budget burn "
                     "rate over the objective's window (1.0 = budget "
                     "exactly spent)")
        lines.append("# TYPE dstampede_slo_burn_rate gauge")
        for row in status:
            labels = _format_labels({"channel": row.get("channel"),
                                     "objective": row.get("objective")})
            lines.append(
                "dstampede_slo_burn_rate"
                f"{labels} {_format_value(row.get('burn_rate'))}")
        lines.append("# HELP dstampede_slo_breaching whether the "
                     "objective is currently breaching its burn budget")
        lines.append("# TYPE dstampede_slo_breaching gauge")
        for row in status:
            labels = _format_labels({"channel": row.get("channel"),
                                     "objective": row.get("objective")})
            lines.append(
                "dstampede_slo_breaching"
                f"{labels} {1 if row.get('breaching') else 0}")
    lines.append("# HELP dstampede_slo_breaches_total SLO breaches "
                 "raised since start")
    lines.append("# TYPE dstampede_slo_breaches_total counter")
    lines.append("dstampede_slo_breaches_total "
                 f"{section.get('breaches', 0)}")


def render(source: Optional[Union[MetricsRegistry,
                                  Mapping[str, Any]]] = None) -> str:
    """Render *source* as Prometheus exposition text.

    *source* may be a :class:`MetricsRegistry` (snapshotted here), an
    already-taken ``registry.snapshot()`` dict (e.g. the ``metrics``
    field of a remote STATS payload), a **full** STATS payload
    (detected by its ``metrics`` key; spans and SLO sections are then
    exported too), or ``None`` for the process-global registry.
    """
    if source is None:
        source = GLOBAL_METRICS
    snap: Mapping[str, Any]
    if isinstance(source, MetricsRegistry):
        snap = source.snapshot(include_collectors=False)
    else:
        snap = source
    lines: List[str] = []
    if "metrics" in snap and "counters" not in snap:
        # A whole STATS payload: metrics plus the span/SLO sections.
        _render_metrics(snap.get("metrics", {}), lines)
        if snap.get("spans"):
            _render_spans(snap["spans"], lines)
        if snap.get("slo"):
            _render_slo(snap["slo"], lines)
    else:
        _render_metrics(snap, lines)
    return "\n".join(lines) + "\n" if lines else ""
