"""Sampling continuous profiler: where is each process spending time?

A timer-driven daemon thread wakes every ``interval`` seconds, walks
``sys._current_frames()`` for every live thread (lanes, reactor, shard
workers, the aio loop — whatever exists in this process) and folds each
stack into a **collapsed-stack** counter::

    thread-name;outer_fn (mod.py);...;leaf_fn (mod.py)  -> samples

Frames are aggregated at function granularity (no line numbers) so
counts merge cleanly across processes; ``tools/flame.py`` renders the
merged counters as flamegraph text.  Sampling cost is paid *by the
profiler thread*, not by the code being profiled — the instrumented hot
paths carry zero added instructions, which is what keeps the profiler
inside the paired <5% overhead gate.

Off by default; enable with ``DSTAMPEDE_PROFILE=1`` (optionally
``DSTAMPEDE_PROFILE_INTERVAL`` seconds) or :func:`start_profiler`.
Snapshots travel over the wire via the ``PROF_DUMP`` op and are merged
across shard workers by :func:`repro.obs.aggregate.merge_profile_dumps`.

Like the rest of :mod:`repro.obs`, this module imports nothing from
``repro.core``/``repro.runtime``.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Dict, Optional

__all__ = [
    "StackProfiler",
    "GLOBAL_PROFILER",
    "start_profiler",
    "stop_profiler",
]

#: Deepest stack retained per sample; outer frames beyond it are dropped
#: (the leaf side is what a flamegraph localizes).
MAX_DEPTH = 64

_DEFAULT_INTERVAL = 0.01


class StackProfiler:
    """Collapsed-stack sampler over every thread of this process."""

    def __init__(self, interval: float = _DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self._lock = threading.Lock()
        self._samples: Dict[str, int] = {}
        self._sample_count = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "StackProfiler":
        """Start the sampler daemon thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="dstampede-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.interval):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - profiler must not harm
                pass

    # -- sampling --------------------------------------------------------------

    def sample_once(self) -> None:
        """Take one sample of every thread (public for deterministic
        tests — no daemon thread required)."""
        me = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate()}
        stamps: Dict[str, int] = {}
        for tid, frame in sys._current_frames().items():
            if tid == me:
                continue  # never profile the profiler
            parts = []
            depth = 0
            while frame is not None and depth < MAX_DEPTH:
                code = frame.f_code
                parts.append(
                    f"{code.co_name} "
                    f"({os.path.basename(code.co_filename)})")
                frame = frame.f_back
                depth += 1
            if not parts:
                continue
            parts.reverse()
            key = ";".join([names.get(tid, f"thread-{tid}")] + parts)
            stamps[key] = stamps.get(key, 0) + 1
        if stamps:
            with self._lock:
                for key, n in stamps.items():
                    self._samples[key] = self._samples.get(key, 0) + n
                    self._sample_count += n

    # -- export ----------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        with self._lock:
            return self._sample_count

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self._sample_count = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view: the PROF_DUMP wire payload body."""
        with self._lock:
            samples = dict(self._samples)
            count = self._sample_count
        return {
            "interval": self.interval,
            "running": self.running,
            "sample_count": count,
            "samples": samples,
        }

    def collapsed(self) -> str:
        """Classic ``stack count`` collapsed-stack text (one line per
        distinct stack) — feedable to any flamegraph tooling."""
        with self._lock:
            items = sorted(self._samples.items())
        return "\n".join(f"{stack} {count}" for stack, count in items)


#: The process-global profiler PROF_DUMP serves.
GLOBAL_PROFILER = StackProfiler(
    interval=float(os.environ.get("DSTAMPEDE_PROFILE_INTERVAL", "")
                   or _DEFAULT_INTERVAL))


def start_profiler(interval: Optional[float] = None) -> StackProfiler:
    """Start the process-global profiler (optionally retuning its
    interval first) and return it."""
    if interval is not None and interval != GLOBAL_PROFILER.interval:
        GLOBAL_PROFILER.stop()
        GLOBAL_PROFILER.interval = interval
    return GLOBAL_PROFILER.start()


def stop_profiler() -> None:
    GLOBAL_PROFILER.stop()


if os.environ.get("DSTAMPEDE_PROFILE", "") not in ("", "0"):
    GLOBAL_PROFILER.start()


# The sampler thread does not survive fork; a forked shard worker also
# inherits the lock in whatever state the parent's sampler left it.
# Fresh lock, fresh counters, and restart the thread if it was running.
if hasattr(os, "register_at_fork"):  # pragma: no branch - always on Linux
    def _restart_after_fork() -> None:
        was_running = GLOBAL_PROFILER._thread is not None
        GLOBAL_PROFILER._lock = threading.Lock()
        GLOBAL_PROFILER._samples = {}
        GLOBAL_PROFILER._sample_count = 0
        GLOBAL_PROFILER._thread = None
        GLOBAL_PROFILER._stop = threading.Event()
        if was_running:
            GLOBAL_PROFILER.start()

    os.register_at_fork(after_in_child=_restart_after_fork)
