"""Observability: metrics, spans, SLOs, profiler, Prometheus, watchdog.

The flight-recorder layer.  :mod:`repro.obs.metrics` holds the
process-global instrument registry the runtime's hot paths report into;
:mod:`repro.obs.spans` records per-item provenance spans (the hop-by-hop
journey and end-to-end information latency of every item);
:mod:`repro.obs.slo` evaluates declarative per-channel SLO targets with
burn-rate windows over those histograms; :mod:`repro.obs.profiler` is a
sampling continuous profiler; :mod:`repro.obs.prom` renders it all as
Prometheus text; :mod:`repro.obs.watchdog` turns the same signals into
stall detection; :mod:`repro.obs.aggregate` merges any of it across
shard workers.

Everything here is import-cheap and dependency-free within the package
(core/runtime import obs, never the reverse), so instrumenting a hot
path cannot create an import cycle.
"""

from repro.obs.metrics import (
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OpProbe,
    disable_metrics,
    enable_metrics,
)
from repro.obs.profiler import (
    GLOBAL_PROFILER,
    StackProfiler,
    start_profiler,
    stop_profiler,
)
from repro.obs.slo import GLOBAL_SLO, SloBreach, SloEngine, SloTarget
from repro.obs.spans import (
    GLOBAL_SPANS,
    SpanRecorder,
    disable_spans,
    enable_spans,
    journey_breakdown,
)
from repro.obs.watchdog import Stall, StallWatchdog

__all__ = [
    "GLOBAL_METRICS",
    "GLOBAL_PROFILER",
    "GLOBAL_SLO",
    "GLOBAL_SPANS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpProbe",
    "SloBreach",
    "SloEngine",
    "SloTarget",
    "SpanRecorder",
    "StackProfiler",
    "Stall",
    "StallWatchdog",
    "disable_metrics",
    "disable_spans",
    "enable_metrics",
    "enable_spans",
    "journey_breakdown",
    "start_profiler",
    "stop_profiler",
]
