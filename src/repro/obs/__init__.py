"""Observability: metrics registry, Prometheus export, stall watchdog.

The flight-recorder layer.  :mod:`repro.obs.metrics` holds the
process-global instrument registry the runtime's hot paths report into;
:mod:`repro.obs.prom` renders a registry snapshot as Prometheus text;
:mod:`repro.obs.watchdog` turns the same signals into stall detection.

Everything here is import-cheap and dependency-free within the package
(core/runtime import obs, never the reverse), so instrumenting a hot
path cannot create an import cycle.
"""

from repro.obs.metrics import (
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OpProbe,
    disable_metrics,
    enable_metrics,
)
from repro.obs.watchdog import Stall, StallWatchdog

__all__ = [
    "GLOBAL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpProbe",
    "Stall",
    "StallWatchdog",
    "disable_metrics",
    "enable_metrics",
]
