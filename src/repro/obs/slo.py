"""Declarative per-channel SLOs evaluated from the span histograms.

A target declares what a channel owes its consumers::

    SloTarget("video", freshness_s=0.5, e2e_p99_ms=100,
              delivery_ratio=0.99)

Three objectives, all measured from data the flight recorder already
collects (no new hot-path cost):

* **freshness** — the container's oldest live timestamp age must stay
  under ``freshness_s`` (the PR 4 watchdog signal, now per-channel);
* **e2e p99** — the 99th percentile of the channel's end-to-end
  information latency (the provenance-span histogram observed at each
  consume, :mod:`repro.obs.spans`) must stay under ``e2e_p99_ms``;
* **delivery ratio** — the fraction of puts that were *not* evicted by
  channel overflow (``1 - evictions/puts``) must stay at or above
  ``delivery_ratio``.

Each objective burns an **error budget**: over a sliding ``window_s``
the engine tracks what fraction of evaluations violated the target, and
the *burn rate* is that fraction divided by the allowed budget
(default 1%).  A burn rate >= 1 means the channel is consuming its
window's budget faster than allowed — that is a **breach**.  Breaches
are counted in the metrics registry, exported through STATS/Prometheus,
and routed into the stall watchdog's ``on_stall`` path (as
``slo_breach`` stalls) so ROADMAP item 3 can later convert them into
load-shedding decisions.

Targets come from code (:meth:`SloEngine.add_target`) or from the
``DSTAMPEDE_SLO`` environment variable::

    DSTAMPEDE_SLO="video:freshness=0.5,e2e_p99_ms=100,delivery=0.99;tele*:freshness=5"

Channel patterns are :mod:`fnmatch` globs.  Like the watchdog, this
module imports nothing from ``repro.core``/``repro.runtime`` —
containers and runtimes are duck-typed.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import (Any, Callable, Deque, Dict, Iterable, List, Mapping,
                    Optional, Tuple)

from repro.obs import spans as _spanmod
from repro.obs.metrics import GLOBAL_METRICS as _metrics
from repro.obs.watchdog import Stall

__all__ = [
    "SloTarget",
    "SloBreach",
    "SloEngine",
    "GLOBAL_SLO",
    "parse_slo_spec",
]

_BREACHES = _metrics.counter("obs.slo.breaches")

#: Objective keys, in evaluation/report order.
OBJECTIVES = ("freshness", "e2e_p99", "delivery")


@dataclass(frozen=True)
class SloTarget:
    """Per-channel service-level objectives (None = objective unset).

    ``channel`` may be an exact container name or an fnmatch glob;
    ``budget`` is the violation fraction the window tolerates before
    the burn rate crosses 1.
    """

    channel: str
    freshness_s: Optional[float] = None
    e2e_p99_ms: Optional[float] = None
    delivery_ratio: Optional[float] = None
    window_s: float = 60.0
    budget: float = 0.01

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if (self.freshness_s is None and self.e2e_p99_ms is None
                and self.delivery_ratio is None):
            raise ValueError(
                f"SLO for {self.channel!r} declares no objective")

    def matches(self, name: str) -> bool:
        return name == self.channel or fnmatchcase(name, self.channel)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "channel": self.channel,
            "freshness_s": self.freshness_s,
            "e2e_p99_ms": self.e2e_p99_ms,
            "delivery_ratio": self.delivery_ratio,
            "window_s": self.window_s,
            "budget": self.budget,
        }


@dataclass(frozen=True)
class SloBreach:
    """One objective whose burn rate crossed 1 within its window."""

    channel: str
    objective: str
    measured: float
    target: float
    burn_rate: float
    window_s: float

    def as_stall(self) -> Stall:
        """Adapt to the watchdog's stall shape so breaches ride the
        existing ``on_stall`` delivery path."""
        return Stall(
            kind="slo_breach",
            subject=self.channel,
            measured=self.measured,
            limit=self.target,
            suspects=[{"owner": f"slo:{self.objective}",
                       "burn_rate": round(self.burn_rate, 3),
                       "window_s": self.window_s}],
        )

    def describe(self) -> str:
        return (f"slo_breach {self.channel}/{self.objective}: "
                f"measured={self.measured:.6g} target={self.target:.6g} "
                f"burn={self.burn_rate:.1f}x over {self.window_s:.0f}s")


def parse_slo_spec(spec: str) -> List[SloTarget]:
    """Parse the ``DSTAMPEDE_SLO`` format.

    ``;``-separated channel clauses, each ``pattern:key=value,...`` with
    keys ``freshness`` (seconds), ``e2e_p99_ms`` (milliseconds),
    ``delivery`` (ratio), ``window`` (seconds), ``budget`` (fraction).
    Raises ``ValueError`` on malformed clauses — a mistyped SLO that
    silently guards nothing is worse than a crash at startup.
    """
    targets: List[SloTarget] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        # Split on the LAST colon: channel names may contain colons
        # ("video:C1", "composite:C0"), the key=value body never does.
        channel, sep, body = clause.rpartition(":")
        if not sep or not channel.strip():
            raise ValueError(f"malformed SLO clause {clause!r} "
                             "(want 'channel:key=value,...')")
        kwargs: Dict[str, float] = {}
        for pair in body.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(f"malformed SLO setting {pair!r} in "
                                 f"clause {clause!r}")
            try:
                kwargs[key.strip()] = float(value)
            except ValueError:
                raise ValueError(f"non-numeric SLO value {pair!r} in "
                                 f"clause {clause!r}") from None
        mapped: Dict[str, float] = {}
        for key, value in kwargs.items():
            name = {"freshness": "freshness_s",
                    "freshness_s": "freshness_s",
                    "e2e_p99_ms": "e2e_p99_ms",
                    "delivery": "delivery_ratio",
                    "delivery_ratio": "delivery_ratio",
                    "window": "window_s",
                    "window_s": "window_s",
                    "budget": "budget"}.get(key)
            if name is None:
                raise ValueError(f"unknown SLO key {key!r} in clause "
                                 f"{clause!r}")
            mapped[name] = value
        targets.append(SloTarget(channel.strip(), **mapped))
    return targets


class SloEngine:
    """Evaluates targets against container + span data, tracking burn.

    The engine is clock-injectable and evaluation-driven: each
    :meth:`evaluate` records one (violated-or-not) sample per active
    objective into that objective's sliding window, then reports status
    rows with the current burn rate.  Drive it from the watchdog's
    periodic check (pass the engine as ``StallWatchdog(slo=...)``), or
    directly in tests with explicit ``now`` values.
    """

    def __init__(self, targets: Iterable[SloTarget] = (),
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.targets: List[SloTarget] = list(targets)
        self._clock = clock
        #: (channel, objective) -> deque[(t, violated)]
        self._windows: Dict[Tuple[str, str], Deque[Tuple[float, bool]]] = {}
        #: Status rows from the most recent evaluate (for STATS).
        self.last_status: List[Dict[str, Any]] = []
        self.breach_count = 0

    def add_target(self, target: SloTarget) -> None:
        self.targets.append(target)

    def clear(self) -> None:
        """Drop all targets and burn windows (tests)."""
        self.targets.clear()
        self._windows.clear()
        self.last_status = []
        self.breach_count = 0

    # -- measurement -----------------------------------------------------------

    @staticmethod
    def _measurements(target: SloTarget,
                      entry: Mapping[str, Any],
                      e2e: Mapping[str, Mapping[str, Any]]
                      ) -> List[Tuple[str, Optional[float], float, bool]]:
        """``(objective, measured, target_value, violated)`` rows for one
        container entry.  ``measured`` is None when no data exists yet
        (no data is never a violation — an idle channel is not broken).
        """
        rows: List[Tuple[str, Optional[float], float, bool]] = []
        name = entry.get("name", "")
        if target.freshness_s is not None:
            age = entry.get("oldest_age")
            measured = float(age) if age is not None else None
            rows.append(("freshness", measured, target.freshness_s,
                         measured is not None
                         and measured > target.freshness_s))
        if target.e2e_p99_ms is not None:
            hist = e2e.get(name)
            measured = None
            if hist and hist.get("count"):
                measured = float(hist.get("p99", 0.0)) / 1e3  # µs -> ms
            rows.append(("e2e_p99", measured, target.e2e_p99_ms,
                         measured is not None
                         and measured > target.e2e_p99_ms))
        if target.delivery_ratio is not None:
            puts = int(entry.get("puts", 0) or 0)
            evictions = int(entry.get("evictions", 0) or 0)
            measured = (1.0 - evictions / puts) if puts else None
            rows.append(("delivery", measured, target.delivery_ratio,
                         measured is not None
                         and measured < target.delivery_ratio))
        return rows

    def _burn(self, key: Tuple[str, str], target: SloTarget,
              violated: bool, now: float) -> float:
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = deque()
        window.append((now, violated))
        floor = now - target.window_s
        while window and window[0][0] < floor:
            window.popleft()
        bad = sum(1 for _, v in window if v)
        return (bad / len(window)) / target.budget if window else 0.0

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, containers: Iterable[Mapping[str, Any]],
                 e2e: Optional[Mapping[str, Mapping[str, Any]]] = None,
                 now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One evaluation pass over container entries (the shape
        ``runtime/inspect.py`` emits) and per-channel e2e histogram
        snapshots.  Returns status rows and remembers them in
        :attr:`last_status`."""
        if now is None:
            now = self._clock()
        e2e = e2e or {}
        status: List[Dict[str, Any]] = []
        for entry in containers:
            name = entry.get("name", "")
            for target in self.targets:
                if not target.matches(name):
                    continue
                for objective, measured, limit, violated in \
                        self._measurements(target, entry, e2e):
                    burn = self._burn((name, objective), target,
                                      violated, now)
                    status.append({
                        "channel": name,
                        "objective": objective,
                        "measured": measured,
                        "target": limit,
                        "violated": violated,
                        "burn_rate": round(burn, 3),
                        "window_s": target.window_s,
                        "breaching": burn >= 1.0,
                    })
        self.last_status = status
        return status

    def check(self, runtime: Optional[Any] = None,
              containers: Optional[Iterable[Mapping[str, Any]]] = None,
              e2e: Optional[Mapping[str, Mapping[str, Any]]] = None,
              now: Optional[float] = None) -> List[SloBreach]:
        """Evaluate and return the objectives currently breaching.

        Either pass pre-extracted ``containers``/``e2e`` (a STATS
        payload's pieces) or a duck-typed runtime to probe live.
        Breaches increment the ``obs.slo.breaches`` counter.
        """
        if not self.targets:
            return []
        if containers is None:
            containers = (self._probe_runtime(runtime, now)
                          if runtime is not None else [])
        if e2e is None:
            e2e = _spanmod.GLOBAL_SPANS.snapshot().get("e2e", {})
        breaches: List[SloBreach] = []
        for row in self.evaluate(containers, e2e, now=now):
            if row["breaching"]:
                breaches.append(SloBreach(
                    channel=row["channel"],
                    objective=row["objective"],
                    measured=(row["measured"]
                              if row["measured"] is not None else 0.0),
                    target=row["target"],
                    burn_rate=row["burn_rate"],
                    window_s=row["window_s"],
                ))
        if breaches:
            self.breach_count += len(breaches)
            _BREACHES.value += len(breaches)
        return breaches

    def _probe_runtime(self, runtime: Any,
                       now: Optional[float]) -> List[Dict[str, Any]]:
        entries: List[Dict[str, Any]] = []
        for space in runtime.address_spaces():
            for container in space.containers():
                try:
                    age = container.oldest_live_age(now=now)
                except Exception:  # noqa: BLE001 - racing destroy()
                    continue
                entries.append({
                    "name": container.name,
                    "oldest_age": age,
                    "puts": getattr(container, "puts", 0),
                    "evictions": getattr(container, "evictions", 0),
                })
        return entries

    # -- export ----------------------------------------------------------------

    def status_payload(self) -> Dict[str, Any]:
        """The STATS-embedded view: declared targets, the latest status
        rows, and the cumulative breach count."""
        return {
            "targets": [t.to_dict() for t in self.targets],
            "status": list(self.last_status),
            "breaches": self.breach_count,
        }


def _targets_from_env() -> List[SloTarget]:
    spec = os.environ.get("DSTAMPEDE_SLO", "")
    if not spec:
        return []
    return parse_slo_spec(spec)


#: The process-global engine; preloaded from ``DSTAMPEDE_SLO``.
GLOBAL_SLO = SloEngine(targets=_targets_from_env())
