"""JDR: the Java client's object-style wire format.

The Java client library of the original system "uses our own data
representation to perform the marshalling and unmarshalling of the
arguments" (§3.2.1), and Result 2 explains why it is slower than the C
path: "in C marshalling and unmarshalling arguments involve mostly pointer
manipulation, while in Java they involve construction of objects".

To reproduce that cost structure honestly rather than with a sleep, this
codec works the way ``ObjectOutputStream`` does:

* every value is first *boxed* into a node object
  (:class:`JBox`) forming an explicit object graph;
* the graph is then walked and written with per-object **class
  descriptors** — the first occurrence of a class writes its name, later
  occurrences write a back-reference handle, exactly like Java's handle
  table;
* decoding rebuilds the box graph (constructing one wrapper object per
  value, plus descriptor bookkeeping) before unboxing to plain values.

The format is therefore genuinely more verbose and allocation-heavy than
XDR, which is what Experiment 3 measures.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import DecodeError, EncodeError
from repro.marshal.codec import Codec, check_in_domain
from repro.util.bytesbuf import ByteReader, ByteWriter

#: Stream magic + version, like Java's ``ACED 0005``.
_MAGIC = 0x4A44
_VERSION = 1

#: Wire opcodes.
_OP_NULL = 0x70
_OP_OBJECT = 0x73
_OP_CLASSDESC = 0x72
_OP_CLASSREF = 0x71


class JBox:
    """A boxed value: one node of the intermediate object graph.

    ``class_name`` mirrors the Java wrapper class that would be
    constructed (``java.lang.Long`` etc.); ``fields`` holds child boxes
    for container types.
    """

    __slots__ = ("class_name", "value", "fields")

    def __init__(self, class_name: str, value: Any = None,
                 fields: "List[JBox]" = None) -> None:  # type: ignore[assignment]
        self.class_name = class_name
        self.value = value
        self.fields = fields if fields is not None else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JBox {self.class_name} value={self.value!r}>"


_CLASS_BOOL = "java.lang.Boolean"
_CLASS_LONG = "java.lang.Long"
_CLASS_DOUBLE = "java.lang.Double"
_CLASS_STRING = "java.lang.String"
_CLASS_BYTES = "[B"
_CLASS_LIST = "java.util.ArrayList"
_CLASS_MAP = "java.util.HashMap"
_CLASS_ENTRY = "java.util.MapEntry"


def box(value: Any) -> JBox:
    """Box a domain value into the intermediate object graph."""
    if value is None:
        return JBox("null")
    if isinstance(value, bool):
        return JBox(_CLASS_BOOL, value)
    if isinstance(value, int):
        return JBox(_CLASS_LONG, value)
    if isinstance(value, float):
        return JBox(_CLASS_DOUBLE, value)
    if isinstance(value, str):
        return JBox(_CLASS_STRING, value)
    if isinstance(value, (bytes, bytearray)):
        return JBox(_CLASS_BYTES, bytes(value))
    if isinstance(value, (list, tuple)):
        return JBox(_CLASS_LIST, None, [box(v) for v in value])
    if isinstance(value, dict):
        entries = [
            JBox(_CLASS_ENTRY, None, [box(k), box(v)])
            for k, v in value.items()
        ]
        return JBox(_CLASS_MAP, None, entries)
    raise EncodeError(f"type {type(value).__name__} outside codec domain")


def unbox(node: JBox) -> Any:
    """Collapse a box graph back to plain values."""
    name = node.class_name
    if name == "null":
        return None
    if name in (_CLASS_BOOL, _CLASS_LONG, _CLASS_DOUBLE, _CLASS_STRING,
                _CLASS_BYTES):
        return node.value
    if name == _CLASS_LIST:
        return [unbox(child) for child in node.fields]
    if name == _CLASS_MAP:
        result: Dict[str, Any] = {}
        for entry in node.fields:
            key = unbox(entry.fields[0])
            result[key] = unbox(entry.fields[1])
        return result
    raise DecodeError(f"unknown boxed class {name!r}")


class JdrCodec(Codec):
    """Java-style object serialization for the shared codec domain."""

    name = "jdr"

    # -- encode -------------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        """Box *value* into an object graph and serialize it."""
        check_in_domain(value)
        graph = box(value)  # object-construction pass (the Java cost)
        writer = ByteWriter()
        writer.write_u16(_MAGIC)
        writer.write_u16(_VERSION)
        handles: Dict[str, int] = {}
        self._write_node(writer, graph, handles)
        return writer.getvalue()

    def _write_node(self, writer: ByteWriter, node: JBox,
                    handles: Dict[str, int]) -> None:
        if node.class_name == "null":
            writer.write_u8(_OP_NULL)
            return
        writer.write_u8(_OP_OBJECT)
        self._write_classdesc(writer, node.class_name, handles)
        name = node.class_name
        if name == _CLASS_BOOL:
            writer.write_u8(1 if node.value else 0)
        elif name == _CLASS_LONG:
            writer.write_i64(node.value)
        elif name == _CLASS_DOUBLE:
            writer.write_f64(node.value)
        elif name == _CLASS_STRING:
            data = node.value.encode("utf-8")
            writer.write_u32(len(data))
            writer.write_bytes(data)
        elif name == _CLASS_BYTES:
            writer.write_u32(len(node.value))
            writer.write_bytes(node.value)
        elif name in (_CLASS_LIST, _CLASS_MAP, _CLASS_ENTRY):
            writer.write_u32(len(node.fields))
            for child in node.fields:
                self._write_node(writer, child, handles)
        else:  # pragma: no cover - box() emits only known classes
            raise EncodeError(f"unknown class {name!r}")

    def _write_classdesc(self, writer: ByteWriter, class_name: str,
                         handles: Dict[str, int]) -> None:
        """First mention: full descriptor; afterwards: handle reference."""
        handle = handles.get(class_name)
        if handle is not None:
            writer.write_u8(_OP_CLASSREF)
            writer.write_u16(handle)
            return
        handles[class_name] = len(handles)
        writer.write_u8(_OP_CLASSDESC)
        data = class_name.encode("utf-8")
        writer.write_u16(len(data))
        writer.write_bytes(data)

    # -- decode -------------------------------------------------------------

    def decode(self, data: bytes) -> Any:
        """Rebuild the object graph from *data* and unbox it."""
        reader = ByteReader(data)
        if reader.read_u16() != _MAGIC:
            raise DecodeError("bad JDR stream magic")
        version = reader.read_u16()
        if version != _VERSION:
            raise DecodeError(f"unsupported JDR version {version}")
        handles: List[str] = []
        graph = self._read_node(reader, handles)
        reader.expect_exhausted()
        return unbox(graph)

    def _read_node(self, reader: ByteReader, handles: List[str]) -> JBox:
        op = reader.read_u8()
        if op == _OP_NULL:
            return JBox("null")
        if op != _OP_OBJECT:
            raise DecodeError(f"expected object opcode, got 0x{op:02x}")
        class_name = self._read_classdesc(reader, handles)
        if class_name == _CLASS_BOOL:
            raw = reader.read_u8()
            if raw not in (0, 1):
                raise DecodeError(f"bad boolean byte 0x{raw:02x}")
            return JBox(class_name, bool(raw))
        if class_name == _CLASS_LONG:
            return JBox(class_name, reader.read_i64())
        if class_name == _CLASS_DOUBLE:
            return JBox(class_name, reader.read_f64())
        if class_name == _CLASS_STRING:
            length = reader.read_u32()
            try:
                text = reader.read_bytes(length).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid UTF-8 string: {exc}") from exc
            return JBox(class_name, text)
        if class_name == _CLASS_BYTES:
            length = reader.read_u32()
            return JBox(class_name, reader.read_bytes(length))
        if class_name in (_CLASS_LIST, _CLASS_MAP, _CLASS_ENTRY):
            count = reader.read_u32()
            if count > reader.remaining:
                raise DecodeError(
                    f"container count {count} exceeds remaining buffer"
                )
            fields = [self._read_node(reader, handles)
                      for _ in range(count)]
            if class_name == _CLASS_ENTRY and len(fields) != 2:
                raise DecodeError("map entry must have exactly two fields")
            return JBox(class_name, None, fields)
        raise DecodeError(f"unknown class descriptor {class_name!r}")

    def _read_classdesc(self, reader: ByteReader,
                        handles: List[str]) -> str:
        op = reader.read_u8()
        if op == _OP_CLASSREF:
            handle = reader.read_u16()
            if handle >= len(handles):
                raise DecodeError(f"dangling class handle {handle}")
            return handles[handle]
        if op != _OP_CLASSDESC:
            raise DecodeError(f"expected class descriptor, got 0x{op:02x}")
        length = reader.read_u16()
        try:
            class_name = reader.read_bytes(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 class name: {exc}") from exc
        handles.append(class_name)
        return class_name
