"""Codec interface and registry.

A codec turns a Python value into bytes and back.  The supported value
domain (shared by every codec so applications can mix clients freely, as
the paper's C+Java applications do) is:

``None``, ``bool``, ``int`` (64-bit signed), ``float``, ``str``,
``bytes``/``bytearray``, ``list``/``tuple`` (decoded as list), and ``dict``
with ``str`` keys.

Containers may nest arbitrarily.  Values outside the domain raise
:class:`~repro.errors.EncodeError` — the application should install a
channel serializer handler for exotic types (§3.1 "Handler Functions").
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List

from repro.errors import EncodeError


class Codec(abc.ABC):
    """Abstract wire format."""

    #: Registry key and wire-negotiation identifier.
    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, value: Any) -> bytes:
        """Serialize *value*; raises :class:`EncodeError` out of domain."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> Any:
        """Deserialize; raises :class:`~repro.errors.DecodeError` on bad
        input.  Total: every ``encode`` output decodes to an equal value
        (tuples come back as lists)."""


_REGISTRY: Dict[str, Codec] = {}


def register_codec(codec: Codec, replace: bool = False) -> None:
    """Register *codec* under ``codec.name``.

    :raises ValueError: the name is taken and ``replace`` is false.
    """
    if not replace and codec.name in _REGISTRY:
        raise ValueError(f"codec {codec.name!r} already registered")
    _REGISTRY[codec.name] = codec


def get_codec(name: str) -> Codec:
    """Look up a codec by name.

    :raises KeyError: unknown codec.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_codecs() -> List[str]:
    """Sorted names of the registered codecs."""
    return sorted(_REGISTRY)


def check_in_domain(value: Any, depth: int = 0) -> None:
    """Validate *value* against the shared codec domain.

    Depth-limited to reject cyclic structures with a clear error instead
    of a recursion crash deep inside an encoder.
    """
    if depth > 64:
        raise EncodeError("value nests deeper than 64 levels (cycle?)")
    if value is None or isinstance(value, (bool, float, str, bytes,
                                           bytearray)):
        return
    if isinstance(value, int):
        if not -(2**63) <= value < 2**63:
            raise EncodeError(f"integer {value} exceeds 64-bit range")
        return
    if isinstance(value, (list, tuple)):
        for member in value:
            check_in_domain(member, depth + 1)
        return
    if isinstance(value, dict):
        for key, member in value.items():
            if not isinstance(key, str):
                raise EncodeError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            check_in_domain(member, depth + 1)
        return
    raise EncodeError(
        f"type {type(value).__name__} is outside the codec domain; "
        f"install a serializer handler on the container"
    )
