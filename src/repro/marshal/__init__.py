"""Wire formats for data crossing address spaces.

The original system shipped arguments between end devices and the cluster
in two representations: the C client library used XDR, while "the Java
client library uses our own data representation to perform the marshalling
and unmarshalling of the arguments" (§3.2.1).  Result 2 of the evaluation
attributes the C/Java performance gap to exactly this difference — XDR
marshalling is "mostly pointer manipulation, while in Java they involve
construction of objects".

We implement both: :class:`~repro.marshal.xdr.XdrCodec` (an RFC 1832
subset made self-describing with a discriminant tag) and
:class:`~repro.marshal.jdr.JdrCodec` (a Java-serialization-style format
that really does build an object graph on both encode and decode, so the
cost asymmetry is reproduced rather than faked).
"""

from repro.marshal.codec import Codec, available_codecs, get_codec, register_codec
from repro.marshal.xdr import XdrCodec, XdrDecoder, XdrEncoder
from repro.marshal.jdr import JdrCodec

# The two personalities the paper ships are always available by name.
register_codec(XdrCodec(), replace=True)
register_codec(JdrCodec(), replace=True)

__all__ = [
    "Codec",
    "JdrCodec",
    "XdrCodec",
    "XdrDecoder",
    "XdrEncoder",
    "available_codecs",
    "get_codec",
    "register_codec",
]
