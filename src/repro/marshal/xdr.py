"""XDR: External Data Representation (RFC 1832 subset).

The C client library of the original system marshals API arguments with
XDR (§3.2.1).  This module provides the XDR primitive encoders — all
quantities big-endian, every item padded to a multiple of four bytes —
plus a self-describing generic codec layered on an XDR discriminated
union, so arbitrary domain values can travel without a compiled schema.

The primitive layer (:class:`XdrEncoder` / :class:`XdrDecoder`) is exactly
what an ``rpcgen``-style stub would use and is used directly by the RPC
layer for fixed message headers; the tagged layer (:class:`XdrCodec`) is
used for item payloads whose shape only the application knows.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List

from repro.errors import DecodeError, EncodeError
from repro.marshal.codec import Codec, check_in_domain
from repro.util.bytesbuf import ByteReader, ByteWriter

_PAD = 4


class XdrEncoder:
    """RFC 1832 primitive encoder."""

    def __init__(self) -> None:
        self._writer = ByteWriter()

    def getvalue(self) -> bytes:
        """The bytes encoded so far."""
        return self._writer.getvalue()

    def pack_int(self, value: int) -> None:
        """Encode an XDR int."""
        if not -(2**31) <= value < 2**31:
            raise EncodeError(f"int {value} out of 32-bit range")
        self._writer.write_i32(value)

    def pack_uint(self, value: int) -> None:
        """Encode an XDR uint."""
        if not 0 <= value < 2**32:
            raise EncodeError(f"uint {value} out of range")
        self._writer.write_u32(value)

    def pack_hyper(self, value: int) -> None:
        """Encode an XDR hyper."""
        if not -(2**63) <= value < 2**63:
            raise EncodeError(f"hyper {value} out of 64-bit range")
        self._writer.write_i64(value)

    def pack_uhyper(self, value: int) -> None:
        """Encode an XDR uhyper."""
        if not 0 <= value < 2**64:
            raise EncodeError(f"uhyper {value} out of range")
        self._writer.write_u64(value)

    def pack_bool(self, value: bool) -> None:
        """Encode an XDR bool."""
        self._writer.write_u32(1 if value else 0)

    def pack_float(self, value: float) -> None:
        """Encode an XDR float."""
        self._writer.write_f32(value)

    def pack_double(self, value: float) -> None:
        """Encode an XDR double."""
        self._writer.write_f64(value)

    def pack_opaque_fixed(self, data: bytes) -> None:
        """Fixed-length opaque: no length prefix, padded to 4."""
        self._writer.write_bytes(bytes(data))
        self._writer.pad_to_multiple(_PAD)

    def pack_opaque(self, data: bytes) -> None:
        """Variable-length opaque: u32 length, data, padding."""
        self.pack_uint(len(data))
        self.pack_opaque_fixed(data)

    def pack_string(self, value: str) -> None:
        """Encode an XDR string."""
        self.pack_opaque(value.encode("utf-8"))

    def pack_array(self, items: List[Any],
                   pack_item: Callable[[Any], None]) -> None:
        """Variable-length array: u32 count then each element."""
        self.pack_uint(len(items))
        for item in items:
            pack_item(item)


class XdrDecoder:
    """RFC 1832 primitive decoder with strict padding checks."""

    def __init__(self, data: bytes) -> None:
        self._reader = ByteReader(data)

    @property
    def remaining(self) -> int:
        """Unread bytes left in the buffer."""
        return self._reader.remaining

    def done(self) -> None:
        """Assert the buffer is fully consumed."""
        self._reader.expect_exhausted()

    def unpack_int(self) -> int:
        """Decode an XDR int."""
        return self._reader.read_i32()

    def unpack_uint(self) -> int:
        """Decode an XDR uint."""
        return self._reader.read_u32()

    def unpack_hyper(self) -> int:
        """Decode an XDR hyper."""
        return self._reader.read_i64()

    def unpack_uhyper(self) -> int:
        """Decode an XDR uhyper."""
        return self._reader.read_u64()

    def unpack_bool(self) -> bool:
        """Decode an XDR bool."""
        value = self._reader.read_u32()
        if value not in (0, 1):
            raise DecodeError(f"XDR bool must be 0 or 1, got {value}")
        return bool(value)

    def unpack_float(self) -> float:
        """Decode an XDR float."""
        return self._reader.read_f32()

    def unpack_double(self) -> float:
        """Decode an XDR double."""
        return self._reader.read_f64()

    def unpack_opaque_fixed(self, length: int) -> bytes:
        """Decode an XDR opaque fixed."""
        data = self._reader.read_bytes(length)
        padding = (-length) % _PAD
        pad = self._reader.read_bytes(padding)
        if pad != b"\x00" * padding:
            raise DecodeError("non-zero XDR padding")
        return data

    def unpack_opaque(self) -> bytes:
        """Decode an XDR opaque."""
        length = self.unpack_uint()
        if length > self.remaining:
            raise DecodeError(
                f"opaque length {length} exceeds remaining "
                f"{self.remaining} bytes"
            )
        return self.unpack_opaque_fixed(length)

    def unpack_opaque_view(self) -> memoryview:
        """Decode an XDR opaque as a zero-copy view into the buffer.

        Identical wire layout to :meth:`unpack_opaque` but the payload is
        returned as a ``memoryview`` aliasing the decode buffer — no copy.
        Use on the server hot path where the payload is immediately handed
        to a container; the view is only valid while the frame buffer is.
        """
        length = self.unpack_uint()
        if length > self.remaining:
            raise DecodeError(
                f"opaque length {length} exceeds remaining "
                f"{self.remaining} bytes"
            )
        data = self._reader.read_view(length)
        padding = (-length) % _PAD
        pad = self._reader.read_bytes(padding)
        if pad != b"\x00" * padding:
            raise DecodeError("non-zero XDR padding")
        return data

    def unpack_string(self) -> str:
        """Decode an XDR string."""
        try:
            return self.unpack_opaque().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 in XDR string: {exc}") from exc

    def unpack_array(self, unpack_item: Callable[[], Any]) -> List[Any]:
        """Decode an XDR array."""
        count = self.unpack_uint()
        if count > self.remaining:  # each element is >= 1 byte encoded
            raise DecodeError(
                f"array count {count} exceeds remaining buffer"
            )
        return [unpack_item() for _ in range(count)]


# ---------------------------------------------------------------------------
# Self-describing generic codec (XDR discriminated union)
# ---------------------------------------------------------------------------

_T_VOID = 0
_T_BOOL = 1
_T_HYPER = 2
_T_DOUBLE = 3
_T_STRING = 4
_T_OPAQUE = 5
_T_ARRAY = 6
_T_STRUCT = 7  # dict with string keys

_OPAQUE_HEAD = struct.Struct(">II").pack  # tag, length
_OPAQUE_PAD = (b"", b"\x00\x00\x00", b"\x00\x00", b"\x00")  # by len & 3


class XdrCodec(Codec):
    """Generic value codec: XDR union of the shared codec domain.

    Encoding is direct buffer writes ("mostly pointer manipulation" in the
    paper's words): no intermediate object graph is built.
    """

    name = "xdr"

    def encode(self, value: Any) -> bytes:
        """Encode a domain value as a self-describing XDR union."""
        if type(value) is bytes and len(value) < 0xFFFFFFFF:
            # The streamed-media hot path: a raw payload encodes as one
            # packed header plus the bytes themselves, byte-identical
            # to the generic union writer below.
            length = len(value)
            return (_OPAQUE_HEAD(_T_OPAQUE, length) + value
                    + _OPAQUE_PAD[length & 3])
        check_in_domain(value)
        enc = XdrEncoder()
        self._encode_value(enc, value)
        return enc.getvalue()

    def _encode_value(self, enc: XdrEncoder, value: Any) -> None:
        if value is None:
            enc.pack_uint(_T_VOID)
        elif isinstance(value, bool):
            enc.pack_uint(_T_BOOL)
            enc.pack_bool(value)
        elif isinstance(value, int):
            enc.pack_uint(_T_HYPER)
            enc.pack_hyper(value)
        elif isinstance(value, float):
            enc.pack_uint(_T_DOUBLE)
            enc.pack_double(value)
        elif isinstance(value, str):
            enc.pack_uint(_T_STRING)
            enc.pack_string(value)
        elif isinstance(value, (bytes, bytearray)):
            enc.pack_uint(_T_OPAQUE)
            enc.pack_opaque(bytes(value))
        elif isinstance(value, (list, tuple)):
            enc.pack_uint(_T_ARRAY)
            enc.pack_array(list(value),
                           lambda v: self._encode_value(enc, v))
        elif isinstance(value, dict):
            enc.pack_uint(_T_STRUCT)
            enc.pack_uint(len(value))
            for key, member in value.items():
                enc.pack_string(key)
                self._encode_value(enc, member)
        else:  # pragma: no cover - check_in_domain rejects earlier
            raise EncodeError(f"unsupported type {type(value).__name__}")

    def decode(self, data: bytes) -> Any:
        """Decode a self-describing XDR union back to a value."""
        dec = XdrDecoder(data)
        value = self._decode_value(dec)
        dec.done()
        return value

    def _decode_value(self, dec: XdrDecoder) -> Any:
        tag = dec.unpack_uint()
        if tag == _T_VOID:
            return None
        if tag == _T_BOOL:
            return dec.unpack_bool()
        if tag == _T_HYPER:
            return dec.unpack_hyper()
        if tag == _T_DOUBLE:
            return dec.unpack_double()
        if tag == _T_STRING:
            return dec.unpack_string()
        if tag == _T_OPAQUE:
            return dec.unpack_opaque()
        if tag == _T_ARRAY:
            return dec.unpack_array(lambda: self._decode_value(dec))
        if tag == _T_STRUCT:
            count = dec.unpack_uint()
            result: Dict[str, Any] = {}
            for _ in range(count):
                key = dec.unpack_string()
                result[key] = self._decode_value(dec)
            return result
        raise DecodeError(f"unknown XDR union discriminant {tag}")
