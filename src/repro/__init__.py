"""D-Stampede: distributed programming system for ubiquitous computing.

A from-scratch Python reproduction of *D-Stampede* (Adhikari, Paul,
Ramachandran — ICDCS 2002): space-time memory (temporally indexed
channels and FIFO queues shared across address spaces), distributed
garbage collection driven by per-connection consumption, handler
functions, Beehive-style real-time synchrony, a name server for dynamic
join/leave, a cluster server with per-device surrogate threads over TCP,
C-flavoured (XDR) and Java-flavoured (JDR) client personalities, and a
CLF-style reliable packet transport over UDP.

Quickstart::

    from repro import StampedeApp, ConnectionMode

    with StampedeApp(address_spaces=["N1"]) as app:
        app.create_channel("frames", space="N1")
        out = app.attach("frames", ConnectionMode.OUT)
        inp = app.attach("frames", ConnectionMode.IN)
        out.put(0, b"frame-0")
        print(inp.get(0))
        inp.consume(0)

See ``examples/`` for end devices joining over TCP, temporal correlation
across streams, data parallelism, and real-time pacing.
"""

from repro.core import (
    Channel,
    Connection,
    ConnectionMode,
    GarbageCollector,
    NEWEST,
    OLDEST,
    SQueue,
    StampedeThread,
    spawn,
)
from repro.core.filters import (
    AllOf,
    AnyOf,
    AttentionFilter,
    FieldEquals,
    NotF,
    SizeAtMost,
    TsModulo,
    TsRange,
)
from repro.client.client import RemoteConnection, StampedeClient
from repro.client.retry import NO_RETRY, RetryPolicy
from repro.errors import StampedeError
from repro.transport.faults import FaultPlan
from repro.runtime.api import StampedeApp
from repro.runtime.federation import FederatedRuntime
from repro.runtime.nameserver import NameRecord, NameServer
from repro.runtime.runtime import Runtime
from repro.runtime.server import StampedeServer
from repro.sync.realtime import RealtimeSynchronizer

__version__ = "1.0.0"

__all__ = [
    "AllOf",
    "AnyOf",
    "AttentionFilter",
    "Channel",
    "Connection",
    "ConnectionMode",
    "FaultPlan",
    "FederatedRuntime",
    "FieldEquals",
    "GarbageCollector",
    "NO_RETRY",
    "NotF",
    "RetryPolicy",
    "SizeAtMost",
    "TsModulo",
    "TsRange",
    "NameRecord",
    "NameServer",
    "NEWEST",
    "OLDEST",
    "RealtimeSynchronizer",
    "RemoteConnection",
    "Runtime",
    "SQueue",
    "StampedeApp",
    "StampedeClient",
    "StampedeError",
    "StampedeServer",
    "StampedeThread",
    "spawn",
    "__version__",
]
