"""A shared ``selectors``-based event loop for the cluster's front door.

The seed design gave every connected end device its own receive thread
waking twice a second — at 1000 devices that is 1000 threads and ~2000
idle wakeups per second before a single byte arrives.  The reactor
replaces them with **one** I/O thread multiplexing every device socket:

* sockets register a readability callback (:meth:`add_reader`); the
  callback does a non-blocking buffered frame decode and hands complete
  requests to the surrogate's per-connection lane sub-queues, so
  blocking container ops never run on the loop and ordering semantics
  are untouched;
* periodic work (lease ageing, parked-session sweeps) hangs off the same
  loop as timers (:meth:`call_every`) instead of dedicated janitor
  threads;
* an idle reactor sleeps in ``select`` until the next timer — idle
  wakeups are O(1) in the number of connected devices, which
  ``benchmarks/test_rpc_throughput.py`` checks via the :attr:`wakeups`
  counter.

Thread-safety: every method may be called from any thread.  Mutations of
the selector are marshalled onto the loop thread through a waker
socketpair; :meth:`remove_reader` is synchronous (it waits for the loop
to acknowledge) so a caller can safely close the fd afterwards without
racing a concurrent ``select`` on a reused descriptor.
"""

from __future__ import annotations

import heapq
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import COUNT_BOUNDS, GLOBAL_METRICS as _metrics
from repro.util.logging import get_logger

log = get_logger("runtime.reactor")

# Loop instruments: how late timers fire (the loop-lag signal — a
# callback monopolising the loop shows up here first), how many fds are
# ready per wakeup, and how much work each tick retires.
_TIMER_LAG_US = _metrics.histogram("runtime.reactor.timer_lag_us")
_READY_SET = _metrics.histogram("runtime.reactor.ready_set",
                                bounds=COUNT_BOUNDS, unit="fds")
_CALLBACKS_PER_TICK = _metrics.histogram(
    "runtime.reactor.callbacks_per_tick", bounds=COUNT_BOUNDS, unit="cbs")
_WAKEUPS = _metrics.counter("runtime.reactor.wakeups")


class Reactor:
    """Single-threaded event loop: fd readability callbacks plus timers."""

    def __init__(self, name: str = "reactor") -> None:
        self._selector = selectors.DefaultSelector()
        self._name = name
        # Waker: writing one byte to _waker_tx makes a blocked select
        # return so queued work can run.
        self._waker_rx, self._waker_tx = socket.socketpair()
        self._waker_rx.setblocking(False)
        self._waker_tx.setblocking(False)
        self._selector.register(self._waker_rx, selectors.EVENT_READ, None)
        self._pending: Deque[Callable[[], None]] = deque()
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = 0
        self._readers: Dict[int, Callable[[], None]] = {}
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Times the loop has woken from ``select`` — the benchmark's
        #: idle-CPU proxy.  Read-only for callers.
        self.wakeups = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the loop thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._run, name=self._name, daemon=True
            )
            self._thread.start()

    def stop(self, join: bool = True) -> None:
        """Stop the loop; with *join* wait for the thread to exit."""
        self._stop_event.set()
        self._wake()
        thread = self._thread
        if join and thread is not None \
                and thread is not threading.current_thread():
            thread.join()

    @property
    def running(self) -> bool:
        """Whether the loop thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def on_loop_thread(self) -> bool:
        """Whether the caller is the loop thread itself."""
        return threading.current_thread() is self._thread

    # -- registration -------------------------------------------------------

    def add_reader(self, fileobj, callback: Callable[[], None]) -> None:
        """Invoke *callback* on the loop whenever *fileobj* is readable."""
        def _register() -> None:
            try:
                self._selector.register(
                    fileobj, selectors.EVENT_READ, callback
                )
            except (ValueError, KeyError, OSError) as exc:
                log.warning("reactor: register(%r) failed: %s",
                            fileobj, exc)
            else:
                self._readers[_fd_of(fileobj)] = callback
        self._invoke(_register)

    def remove_reader(self, fileobj) -> None:
        """Unregister *fileobj* and wait until the loop has done so.

        Synchronous on purpose: once this returns, the loop holds no
        reference to the fd and the caller may close it without a
        descriptor-reuse race.  Safe to call for an fd that was never
        registered (no-op), from the loop thread (direct), or after the
        loop has stopped (direct).
        """
        def _unregister() -> None:
            try:
                self._selector.unregister(fileobj)
            except (KeyError, ValueError, OSError):
                pass
            self._readers.pop(_fd_of(fileobj), None)

        thread = self._thread
        if self.on_loop_thread() or thread is None or not thread.is_alive():
            _unregister()
            return
        done = threading.Event()

        def _unregister_and_ack() -> None:
            _unregister()
            done.set()

        self.call_soon(_unregister_and_ack)
        if not done.wait(2.0):
            # Loop wedged or died mid-wait; last-resort direct removal
            # (selectors tolerate concurrent unregister of distinct fds).
            _unregister()

    # -- deferred work ------------------------------------------------------

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run *callback* on the loop thread as soon as possible."""
        self._invoke(callback)

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> None:
        """Run *callback* on the loop thread after *delay* seconds."""
        def _arm() -> None:
            self._timer_seq += 1
            heapq.heappush(
                self._timers,
                (time.monotonic() + delay, self._timer_seq, callback),
            )
        self._invoke(_arm)

    def call_every(self, interval: float,
                   callback: Callable[[], None]) -> None:
        """Run *callback* every *interval* seconds until the loop stops."""
        def _tick() -> None:
            try:
                callback()
            except Exception:
                log.exception("reactor: periodic task failed")
            self.call_later(interval, _tick)
        self.call_later(interval, _tick)

    # -- internals ----------------------------------------------------------

    def _invoke(self, callback: Callable[[], None]) -> None:
        if self.on_loop_thread():
            callback()
            return
        self._pending.append(callback)
        self._wake()

    def _wake(self) -> None:
        try:
            self._waker_tx.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe full = a wakeup is already queued; closed = done

    def _run(self) -> None:
        try:
            while not self._stop_event.is_set():
                timeout = None
                if self._timers:
                    timeout = max(0.0,
                                  self._timers[0][0] - time.monotonic())
                events = self._selector.select(timeout)
                self.wakeups += 1
                metered = _metrics.enabled
                if metered:
                    _WAKEUPS.value += 1
                    _READY_SET.observe(len(events))
                ran = 0
                for key, _mask in events:
                    if key.fileobj is self._waker_rx:
                        self._drain_waker()
                        continue
                    callback = key.data
                    ran += 1
                    try:
                        callback()
                    except Exception:
                        log.exception("reactor: reader callback failed")
                while self._pending:
                    callback = self._pending.popleft()
                    ran += 1
                    try:
                        callback()
                    except Exception:
                        log.exception("reactor: queued callback failed")
                now = time.monotonic()
                while self._timers and self._timers[0][0] <= now:
                    _when, _seq, callback = heapq.heappop(self._timers)
                    ran += 1
                    if metered:
                        _TIMER_LAG_US.observe((now - _when) * 1e6)
                    try:
                        callback()
                    except Exception:
                        log.exception("reactor: timer callback failed")
                if metered and ran:
                    _CALLBACKS_PER_TICK.observe(ran)
        finally:
            try:
                self._selector.close()
            except OSError:  # pragma: no cover
                pass
            for sock in (self._waker_rx, self._waker_tx):
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass

    def _drain_waker(self) -> None:
        while True:
            try:
                if not self._waker_rx.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return


def _fd_of(fileobj) -> int:
    return fileobj if isinstance(fileobj, int) else fileobj.fileno()
