"""The D-Stampede runtime: address spaces, naming, cluster server.

Layering (bottom to top):

* :mod:`.nameserver` — the registry that makes dynamic start/stop work;
* :mod:`.address_space` — protection domains holding containers and
  threads, each with its own garbage collector;
* :mod:`.runtime` — an in-process cluster: several address spaces whose
  cross-space traffic is forced through serialization (memory isolation);
* :mod:`.ops` — the operation wire protocol shared by every remote path;
* :mod:`.service` — executes decoded operations against a runtime;
* :mod:`.surrogate` / :mod:`.server` — the cluster-side listener that
  gives every end device a surrogate thread (§3.2.2);
* :mod:`.api` — the uniform application-facing facade.
"""

from repro.runtime.nameserver import NameRecord, NameServer
from repro.runtime.address_space import AddressSpace
from repro.runtime.runtime import Runtime
from repro.runtime.server import StampedeServer
from repro.runtime.federation import ClusterBridge, FederatedRuntime

__all__ = [
    "AddressSpace",
    "ClusterBridge",
    "FederatedRuntime",
    "NameRecord",
    "NameServer",
    "Runtime",
    "StampedeServer",
]
