"""Executes wire operations against a runtime on behalf of one end device.

One :class:`SessionService` instance exists per connected end device; it
is the state the paper says the surrogate maintains — "state information
pertaining to an end device is maintained by the server library via the
associated surrogate thread" (§3.2.2):

* the device's assigned address space,
* the device's codec personality (XDR or JDR),
* its open connections (wire connection-ids map to real
  :class:`~repro.core.connection.Connection` objects),
* its pending reclaim notifications (§3.2.4), drained into every response.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.core.connection import Connection, ConnectionMode
from repro.core.container import Container
from repro.core.timestamps import NEWEST, OLDEST
from repro.errors import RpcError
from repro.marshal import get_codec
from repro.runtime import ops
from repro.runtime.nameserver import NameRecord
from repro.runtime.runtime import Runtime

_session_ids = itertools.count(1)

_MODES = {
    "in": ConnectionMode.IN,
    "out": ConnectionMode.OUT,
    "inout": ConnectionMode.INOUT,
}


class SessionService:
    """Per-end-device operation executor.

    Parameters
    ----------
    runtime:
        The cluster runtime operations act on.
    space:
        The address space assigned to this device (the ``N_i`` its
        listener lives in, §4).
    client_name:
        Diagnostic label until HELLO overrides it.
    """

    def __init__(self, runtime: Runtime, space: str,
                 client_name: str = "") -> None:
        self.runtime = runtime
        self.space = space
        self.client_name = client_name
        self.session_id = f"session-{next(_session_ids)}"
        #: Credential a reconnecting device presents in RESUME to reclaim
        #: this session after its transport died (handed out in HELLO).
        self.resume_token = uuid.uuid4().hex
        self.hello_done = False
        self.codec = get_codec("xdr")
        self._connections: Dict[int, Connection] = {}
        self._conn_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._pending_reclaims: List[ops.Reclaim] = []
        #: containers we installed a reclaim-forwarding handler on:
        #: name -> (container, handler) for removal at close.
        self._handlers: Dict[str, Tuple[Container, Any]] = {}
        self._registered_names: List[str] = []
        self.closed = False

    # -- reclaim piggybacking ----------------------------------------------------

    def drain_reclaims(self) -> List[ops.Reclaim]:
        """Take (and clear) pending reclaim notifications."""
        with self._lock:
            drained = self._pending_reclaims
            self._pending_reclaims = []
            return drained

    def _install_reclaim_forwarder(self, container: Container) -> None:
        with self._lock:
            if container.name in self._handlers:
                return

            def forwarder(timestamp, value, _name=container.name):
                with self._lock:
                    self._pending_reclaims.append((_name, timestamp))

            self._handlers[container.name] = (container, forwarder)
        container.add_reclaim_handler(forwarder)

    # -- dispatch -----------------------------------------------------------------

    def execute(self, opcode: int, args: Dict[str, Any]) -> Dict[str, Any]:
        """Run one operation; returns the result fields.

        Exceptions propagate to the surrogate, which encodes them as error
        responses.
        """
        handler = self._DISPATCH.get(opcode)
        if handler is None:
            raise RpcError(f"unhandled opcode {opcode}")
        return handler(self, args)

    # -- operations ------------------------------------------------------------------

    def _op_hello(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self.client_name = args["client_name"]
        self.codec = get_codec(args["codec"])
        self.hello_done = True
        return {"session_id": self.session_id, "space": self.space,
                "token": self.resume_token}

    def _op_create_channel(self, args: Dict[str, Any]) -> Dict[str, Any]:
        space = args["space"] or self.space
        capacity = args["capacity"] if args["bounded"] else None
        self.runtime.create_channel(args["name"], space, capacity=capacity)
        return {}

    def _op_create_queue(self, args: Dict[str, Any]) -> Dict[str, Any]:
        space = args["space"] or self.space
        capacity = args["capacity"] if args["bounded"] else None
        self.runtime.create_queue(
            args["name"], space, capacity=capacity,
            auto_consume=args["auto_consume"],
        )
        return {}

    def _op_attach(self, args: Dict[str, Any]) -> Dict[str, Any]:
        mode_name = args["mode"]
        mode = _MODES.get(mode_name)
        if mode is None:
            raise RpcError(f"unknown connection mode {mode_name!r}")
        if args["wait"]:
            self.runtime.nameserver.wait_for(
                args["container"], timeout=args["wait_timeout"]
            )
        attention_filter = None
        if args["filter"]:
            # The device shipped a declarative filter spec: rebuild it
            # here so filtering runs on the cluster, before items cross
            # the network (the paper's selective-attention future work).
            from repro.core.filters import filter_from_spec

            spec = self.codec.decode(args["filter"])
            attention_filter = filter_from_spec(spec).predicate()
        container = self.runtime.lookup_container(args["container"])
        connection = container.attach(
            mode, owner=f"{self.session_id}:{self.client_name}",
            attention_filter=attention_filter,
        )
        if mode.can_get:
            # The device may hold user buffers for items it got; forward
            # reclamations so its client library can free them (§3.2.4).
            self._install_reclaim_forwarder(container)
        wire_id = next(self._conn_ids)
        with self._lock:
            self._connections[wire_id] = connection
        return {"connection_id": wire_id, "kind": container.KIND}

    def _op_detach(self, args: Dict[str, Any]) -> Dict[str, Any]:
        connection = self._take_connection(args["connection_id"])
        connection.detach()
        return {}

    def _op_put(self, args: Dict[str, Any]) -> Dict[str, Any]:
        connection = self._connection(args["connection_id"])
        value = self.codec.decode(args["payload"])
        timeout = args["timeout"] if args["has_timeout"] else None
        connection.put(
            args["timestamp"], value, size=len(args["payload"]),
            block=args["block"], timeout=timeout,
        )
        return {}

    def _op_get(self, args: Dict[str, Any]) -> Dict[str, Any]:
        connection = self._connection(args["connection_id"])
        vt_kind = args["vt_kind"]
        if vt_kind == ops.VT_NEWEST:
            vt = NEWEST
        elif vt_kind == ops.VT_OLDEST:
            vt = OLDEST
        elif vt_kind == ops.VT_CONCRETE:
            vt = args["timestamp"]
        else:
            raise RpcError(f"unknown virtual-time kind {vt_kind}")
        timeout = args["timeout"] if args["has_timeout"] else None
        if hasattr(connection.container, "get_item"):
            # Channels fan one item out to many consumers: run the
            # serializer once and pin the bytes on the item, so every
            # later get of the same item ships the cached buffer.
            item = connection.get_item(
                vt, block=args["block"], timeout=timeout
            )
            payload, _hit = item.encoded_payload(
                f"codec:{self.codec.name}", self.codec.encode
            )
            return {"timestamp": item.timestamp, "payload": payload}
        ts, value = connection.get(vt, block=args["block"], timeout=timeout)
        return {"timestamp": ts, "payload": self.codec.encode(value)}

    def _op_consume(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self._connection(args["connection_id"]).consume(args["timestamp"])
        return {}

    def _op_consume_until(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self._connection(args["connection_id"]).consume_until(
            args["timestamp"]
        )
        return {}

    def _op_ns_register(self, args: Dict[str, Any]) -> Dict[str, Any]:
        metadata = self.codec.decode(args["metadata"]) \
            if args["metadata"] else {}
        ttl = args["ttl"] if args.get("has_ttl") else None
        self.runtime.nameserver.register(
            NameRecord(name=args["name"], kind=args["kind"],
                       address_space=self.space, metadata=metadata),
            ttl=ttl,
        )
        with self._lock:
            self._registered_names.append(args["name"])
        return {}

    def _op_ns_unregister(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self.runtime.nameserver.unregister(args["name"])
        with self._lock:
            if args["name"] in self._registered_names:
                self._registered_names.remove(args["name"])
        return {}

    def _op_ns_lookup(self, args: Dict[str, Any]) -> Dict[str, Any]:
        record = self.runtime.nameserver.lookup(args["name"])
        return {
            "kind": record.kind,
            "space": record.address_space,
            "metadata": self.codec.encode(record.metadata),
        }

    def _op_ns_list(self, args: Dict[str, Any]) -> Dict[str, Any]:
        kind: Optional[str] = args["kind"] or None
        records = self.runtime.nameserver.list(kind=kind)
        return {"names": [r.name for r in records]}

    def _op_ping(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # The device's heartbeat doubles as the lease refresh for every
        # name it registered with a TTL: a silent device's names expire,
        # a merely idle one's do not.
        with self._lock:
            names = list(self._registered_names)
        for name in names:
            self.runtime.nameserver.refresh(name)
        return {"payload": args["payload"]}

    def _op_bye(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self.close()
        return {}

    def _op_resume(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # RESUME is a server-level handshake (it swaps which session a
        # surrogate serves); the surrogate intercepts it before dispatch.
        # Reaching this handler means the server has no session table.
        raise RpcError("this server does not support session resume "
                       "(no session_grace configured)")

    def _op_set_realtime(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # Real-time pacing runs on the end device (the client library owns
        # the clock it paces against); the surrogate only records the
        # declared cadence for diagnostics.
        self.realtime_tick = args["tick_period"]
        self.realtime_tolerance = args["tolerance"]
        return {}

    def _op_gc_report(self, args: Dict[str, Any]) -> Dict[str, Any]:
        sweeps = 0
        items = 0
        bytes_ = 0
        for space in self.runtime.address_spaces():
            sweeps += space.gc.report.sweeps
            # Reclamation happens both in daemon sweeps and inline inside
            # consume calls; container counters see every path.
            for container in space.containers():
                items += container.stats().reclaimed
            bytes_ += space.gc.report.bytes_reclaimed
        return {"sweeps": sweeps, "items": items, "bytes": bytes_}

    def _op_inspect(self, args: Dict[str, Any]) -> Dict[str, Any]:
        from repro.runtime.inspect import snapshot

        return {"snapshot": self.codec.encode(snapshot(self.runtime))}

    def _op_stats(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # JSON rather than the session codec: the snapshot is diagnostic
        # data for dashboards and scrapers (tools/top.py, the Prometheus
        # exporter), which should not need an XDR decoder.
        import json

        from repro.runtime.inspect import observability_snapshot

        payload = observability_snapshot(self.runtime)
        return {"snapshot": json.dumps(payload, default=str).encode("utf-8")}

    def _op_trace_dump(self, args: Dict[str, Any]) -> Dict[str, Any]:
        import json

        from repro.util.trace import GLOBAL_TRACER

        max_events = args.get("max_events", 0)
        events = GLOBAL_TRACER.export(limit=max_events or None)
        payload = {
            "label": f"{self.runtime.name}",
            "enabled": GLOBAL_TRACER.enabled,
            "dropped": GLOBAL_TRACER.dropped,
            "recorded": GLOBAL_TRACER.recorded,
            "events": events,
        }
        if args.get("clear"):
            GLOBAL_TRACER.clear()
        return {"events": json.dumps(payload, default=str).encode("utf-8")}

    _DISPATCH = {
        ops.OP_HELLO: _op_hello,
        ops.OP_CREATE_CHANNEL: _op_create_channel,
        ops.OP_CREATE_QUEUE: _op_create_queue,
        ops.OP_ATTACH: _op_attach,
        ops.OP_DETACH: _op_detach,
        ops.OP_PUT: _op_put,
        ops.OP_GET: _op_get,
        ops.OP_CONSUME: _op_consume,
        ops.OP_CONSUME_UNTIL: _op_consume_until,
        ops.OP_NS_REGISTER: _op_ns_register,
        ops.OP_NS_UNREGISTER: _op_ns_unregister,
        ops.OP_NS_LOOKUP: _op_ns_lookup,
        ops.OP_NS_LIST: _op_ns_list,
        ops.OP_PING: _op_ping,
        ops.OP_BYE: _op_bye,
        ops.OP_SET_REALTIME: _op_set_realtime,
        ops.OP_GC_REPORT: _op_gc_report,
        ops.OP_INSPECT: _op_inspect,
        ops.OP_RESUME: _op_resume,
        ops.OP_STATS: _op_stats,
        ops.OP_TRACE_DUMP: _op_trace_dump,
    }

    # -- connection table -------------------------------------------------------------

    def has_connection(self, wire_id: int) -> bool:
        """Whether *wire_id* names a live connection of this session."""
        with self._lock:
            return wire_id in self._connections

    def connection_count(self) -> int:
        """Number of live wire connections (RESUME reports it back)."""
        with self._lock:
            return len(self._connections)

    def _connection(self, wire_id: int) -> Connection:
        with self._lock:
            connection = self._connections.get(wire_id)
        if connection is None:
            raise RpcError(f"unknown connection id {wire_id}")
        return connection

    def _take_connection(self, wire_id: int) -> Connection:
        with self._lock:
            connection = self._connections.pop(wire_id, None)
        if connection is None:
            raise RpcError(f"unknown connection id {wire_id}")
        return connection

    # -- teardown ----------------------------------------------------------------------

    def close(self) -> None:
        """Release everything the device held: connections detach (so GC
        stops waiting on it) and reclaim forwarders are removed.

        Mirrors "the surrogate thread ceases to exist when the end device
        goes away" (§3.2.2).
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            connections = list(self._connections.values())
            self._connections.clear()
            handlers = list(self._handlers.values())
            self._handlers.clear()
        for connection in connections:
            connection.detach()
        for container, forwarder in handlers:
            try:
                container.remove_reclaim_handler(forwarder)
            except ValueError:
                pass  # container already destroyed
