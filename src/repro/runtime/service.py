"""Executes wire operations against a runtime on behalf of one end device.

One :class:`SessionService` instance exists per connected end device; it
is the state the paper says the surrogate maintains — "state information
pertaining to an end device is maintained by the server library via the
associated surrogate thread" (§3.2.2):

* the device's assigned address space,
* the device's codec personality (XDR or JDR),
* its open connections (wire connection-ids map to real
  :class:`~repro.core.connection.Connection` objects),
* its pending reclaim notifications (§3.2.4), drained into every response.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.core.connection import Connection, ConnectionMode
from repro.core.container import Container
from repro.core.timestamps import NEWEST, OLDEST
from repro.errors import RpcError, StampedeError
from repro.marshal import get_codec
from repro.runtime import ops
from repro.runtime.nameserver import NameRecord
from repro.runtime.runtime import Runtime

_session_ids = itertools.count(1)

_MODES = {
    "in": ConnectionMode.IN,
    "out": ConnectionMode.OUT,
    "inout": ConnectionMode.INOUT,
}


class SessionService:
    """Per-end-device operation executor.

    Parameters
    ----------
    runtime:
        The cluster runtime operations act on.
    space:
        The address space assigned to this device (the ``N_i`` its
        listener lives in, §4).
    client_name:
        Diagnostic label until HELLO overrides it.
    router:
        The shard router when this service runs inside a sharded server
        (see :mod:`repro.runtime.shards`).  ``None`` — the default and
        the ``shards=1`` case — leaves every operation exactly as the
        single-process server executes it.  With a router, operations
        naming a container (or name binding) the local shard does not
        own are forwarded over the owner's peer link; aggregate
        operations (STATS, GC_REPORT, NS_LIST) additionally merge every
        peer's answer when the router has ``fanout`` set (front-door
        sessions do; peer-door sessions do not, so forwarded aggregates
        answer locally and can never recurse).
    """

    def __init__(self, runtime: Runtime, space: str,
                 client_name: str = "", router: Any = None) -> None:
        self.runtime = runtime
        self.space = space
        self.client_name = client_name
        self._router = router
        self.session_id = f"session-{next(_session_ids)}"
        #: Credential a reconnecting device presents in RESUME to reclaim
        #: this session after its transport died (handed out in HELLO).
        self.resume_token = uuid.uuid4().hex
        self.hello_done = False
        self.codec = get_codec("xdr")
        self._connections: Dict[int, Connection] = {}
        self._conn_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._pending_reclaims: List[ops.Reclaim] = []
        #: containers we installed a reclaim-forwarding handler on:
        #: name -> (container, handler) for removal at close.
        self._handlers: Dict[str, Tuple[Container, Any]] = {}
        self._registered_names: List[str] = []
        self.closed = False

    # -- reclaim piggybacking ----------------------------------------------------

    def drain_reclaims(self) -> List[ops.Reclaim]:
        """Take (and clear) pending reclaim notifications."""
        with self._lock:
            drained = self._pending_reclaims
            self._pending_reclaims = []
            return drained

    def _install_reclaim_forwarder(self, container: Container) -> None:
        with self._lock:
            if container.name in self._handlers:
                return

            def forwarder(timestamp, value, _name=container.name):
                with self._lock:
                    self._pending_reclaims.append((_name, timestamp))

            self._handlers[container.name] = (container, forwarder)
        container.add_reclaim_handler(forwarder)

    def note_reclaim(self, container_name: str, timestamp: int) -> None:
        """Queue a reclaim notification from a *remote* container.

        The shard router calls this when the owner shard of a forwarded
        connection reclaims an item this session saw; it piggybacks on
        the next response exactly like a local reclaim (§3.2.4).
        """
        with self._lock:
            self._pending_reclaims.append((container_name, timestamp))

    # -- dispatch -----------------------------------------------------------------

    def execute(self, opcode: int, args: Dict[str, Any]) -> Dict[str, Any]:
        """Run one operation; returns the result fields.

        Exceptions propagate to the surrogate, which encodes them as error
        responses.
        """
        handler = self._DISPATCH.get(opcode)
        if handler is None:
            raise RpcError(f"unhandled opcode {opcode}")
        return handler(self, args)

    # -- operations ------------------------------------------------------------------

    def _op_hello(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self.client_name = args["client_name"]
        self.codec = get_codec(args["codec"])
        self.hello_done = True
        return {"session_id": self.session_id, "space": self.space,
                "token": self.resume_token}

    def _op_create_channel(self, args: Dict[str, Any]) -> Dict[str, Any]:
        space = args["space"] or self.space
        capacity = args["capacity"] if args["bounded"] else None
        if self._router is not None \
                and not self._router.is_local(args["name"]):
            # Container-create routing: the consistent-hash ring assigns
            # this name to another shard; create it there.
            self._router.client_for(args["name"]).create_channel(
                args["name"], space=space, capacity=capacity)
            return {}
        self.runtime.create_channel(args["name"], space, capacity=capacity)
        return {}

    def _op_create_queue(self, args: Dict[str, Any]) -> Dict[str, Any]:
        space = args["space"] or self.space
        capacity = args["capacity"] if args["bounded"] else None
        if self._router is not None \
                and not self._router.is_local(args["name"]):
            self._router.client_for(args["name"]).create_queue(
                args["name"], space=space, capacity=capacity,
                auto_consume=args["auto_consume"])
            return {}
        self.runtime.create_queue(
            args["name"], space, capacity=capacity,
            auto_consume=args["auto_consume"],
        )
        return {}

    def _op_attach(self, args: Dict[str, Any]) -> Dict[str, Any]:
        mode_name = args["mode"]
        mode = _MODES.get(mode_name)
        if mode is None:
            raise RpcError(f"unknown connection mode {mode_name!r}")
        if self._router is not None \
                and not self._router.is_local(args["container"]):
            return self._attach_forwarded(args, mode)
        if args["wait"]:
            self.runtime.nameserver.wait_for(
                args["container"], timeout=args["wait_timeout"]
            )
        attention_filter = None
        if args["filter"]:
            # The device shipped a declarative filter spec: rebuild it
            # here so filtering runs on the cluster, before items cross
            # the network (the paper's selective-attention future work).
            from repro.core.filters import filter_from_spec

            spec = self.codec.decode(args["filter"])
            attention_filter = filter_from_spec(spec).predicate()
        container = self.runtime.lookup_container(args["container"])
        connection = container.attach(
            mode, owner=f"{self.session_id}:{self.client_name}",
            attention_filter=attention_filter,
        )
        if mode.can_get:
            # The device may hold user buffers for items it got; forward
            # reclamations so its client library can free them (§3.2.4).
            self._install_reclaim_forwarder(container)
        wire_id = next(self._conn_ids)
        with self._lock:
            self._connections[wire_id] = connection
        return {"connection_id": wire_id, "kind": container.KIND}

    def _attach_forwarded(self, args: Dict[str, Any],
                          mode: ConnectionMode) -> Dict[str, Any]:
        """Attach to a container another shard owns.

        The owner's peer link performs the real attach; the returned
        handle is wrapped in a
        :class:`~repro.runtime.shards._ForwardedConnection` and stored
        under a local wire id, so the device cannot tell the container
        is remote.  The attention filter is re-built from its spec and
        shipped onward — it executes on the *owner* shard, so filtered
        items never cross the shard link either.
        """
        from repro.runtime.shards import _ForwardedConnection

        name = args["container"]
        attention_filter = None
        if args["filter"]:
            from repro.core.filters import filter_from_spec

            spec = self.codec.decode(args["filter"])
            attention_filter = filter_from_spec(spec)
        client = self._router.client_for(name)
        remote = client.attach(
            name, mode,
            wait=args["wait_timeout"] if args["wait"] else None,
            attention_filter=attention_filter,
        )
        if mode.can_get:
            # Reclaims on the owner shard must reach this device: route
            # them through the router's interest registry (the shared
            # peer link delivers them; see §3.2.4 piggybacking).
            self._router.add_reclaim_interest(name, self)
        forwarded = _ForwardedConnection(remote, self._router, name, self)
        wire_id = next(self._conn_ids)
        with self._lock:
            self._connections[wire_id] = forwarded
        return {"connection_id": wire_id, "kind": remote.kind}

    def _op_detach(self, args: Dict[str, Any]) -> Dict[str, Any]:
        connection = self._take_connection(args["connection_id"])
        connection.detach()
        return {}

    def _op_put(self, args: Dict[str, Any]) -> Dict[str, Any]:
        connection = self._connection(args["connection_id"])
        value = self.codec.decode(args["payload"])
        timeout = args["timeout"] if args["has_timeout"] else None
        connection.put(
            args["timestamp"], value, size=len(args["payload"]),
            block=args["block"], timeout=timeout,
        )
        return {}

    def _op_get(self, args: Dict[str, Any]) -> Dict[str, Any]:
        connection = self._connection(args["connection_id"])
        vt_kind = args["vt_kind"]
        if vt_kind == ops.VT_NEWEST:
            vt = NEWEST
        elif vt_kind == ops.VT_OLDEST:
            vt = OLDEST
        elif vt_kind == ops.VT_CONCRETE:
            vt = args["timestamp"]
        else:
            raise RpcError(f"unknown virtual-time kind {vt_kind}")
        timeout = args["timeout"] if args["has_timeout"] else None
        if hasattr(connection.container, "get_item"):
            # Channels fan one item out to many consumers: run the
            # serializer once and pin the bytes on the item, so every
            # later get of the same item ships the cached buffer.
            item = connection.get_item(
                vt, block=args["block"], timeout=timeout
            )
            payload, _hit = item.encoded_payload(
                f"codec:{self.codec.name}", self.codec.encode
            )
            return {"timestamp": item.timestamp, "payload": payload}
        ts, value = connection.get(vt, block=args["block"], timeout=timeout)
        return {"timestamp": ts, "payload": self.codec.encode(value)}

    def _op_consume(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self._connection(args["connection_id"]).consume(args["timestamp"])
        return {}

    def _op_consume_until(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self._connection(args["connection_id"]).consume_until(
            args["timestamp"]
        )
        return {}

    def _op_ns_register(self, args: Dict[str, Any]) -> Dict[str, Any]:
        metadata = self.codec.decode(args["metadata"]) \
            if args["metadata"] else {}
        ttl = args["ttl"] if args.get("has_ttl") else None
        if self._router is not None \
                and not self._router.is_local(args["name"]):
            # Name bindings ride the same ring as containers, so a
            # lookup from any shard finds any binding.
            self._router.client_for(args["name"]).ns_register(
                args["name"], args["kind"], metadata=metadata, ttl=ttl)
        else:
            self.runtime.nameserver.register(
                NameRecord(name=args["name"], kind=args["kind"],
                           address_space=self.space, metadata=metadata),
                ttl=ttl,
            )
        with self._lock:
            self._registered_names.append(args["name"])
        return {}

    def _op_ns_unregister(self, args: Dict[str, Any]) -> Dict[str, Any]:
        if self._router is not None \
                and not self._router.is_local(args["name"]):
            self._router.client_for(args["name"]).ns_unregister(
                args["name"])
        else:
            self.runtime.nameserver.unregister(args["name"])
        with self._lock:
            if args["name"] in self._registered_names:
                self._registered_names.remove(args["name"])
        return {}

    def _op_ns_lookup(self, args: Dict[str, Any]) -> Dict[str, Any]:
        if self._router is not None \
                and not self._router.is_local(args["name"]):
            kind, space, metadata = self._router.client_for(
                args["name"]).ns_lookup(args["name"])
            return {"kind": kind, "space": space,
                    "metadata": self.codec.encode(metadata)}
        record = self.runtime.nameserver.lookup(args["name"])
        return {
            "kind": record.kind,
            "space": record.address_space,
            "metadata": self.codec.encode(record.metadata),
        }

    def _op_ns_list(self, args: Dict[str, Any]) -> Dict[str, Any]:
        kind: Optional[str] = args["kind"] or None
        records = self.runtime.nameserver.list(kind=kind)
        names = [r.name for r in records]
        if self._router is not None and self._router.fanout:
            names = self._router.merged_ns_list(names, args["kind"])
        return {"names": names}

    def _op_ns_refresh(self, args: Dict[str, Any]) -> Dict[str, Any]:
        if self._router is not None \
                and not self._router.is_local(args["name"]):
            refreshed = self._router.client_for(
                args["name"]).ns_refresh(args["name"])
            return {"refreshed": refreshed}
        return {"refreshed": self.runtime.nameserver.refresh(
            args["name"])}

    def _op_ping(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # The device's heartbeat doubles as the lease refresh for every
        # name it registered with a TTL: a silent device's names expire,
        # a merely idle one's do not.  Names the ring placed on another
        # shard are refreshed there, per name, over the peer link.
        with self._lock:
            names = list(self._registered_names)
        for name in names:
            if self._router is not None \
                    and not self._router.is_local(name):
                try:
                    self._router.client_for(name).ns_refresh(name)
                except StampedeError:
                    pass  # peer briefly unreachable: same as a lost ping
            else:
                self.runtime.nameserver.refresh(name)
        return {"payload": args["payload"]}

    def _op_bye(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self.close()
        return {}

    def _op_resume(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # RESUME is a server-level handshake (it swaps which session a
        # surrogate serves); the surrogate intercepts it before dispatch.
        # Reaching this handler means the server has no session table.
        raise RpcError("this server does not support session resume "
                       "(no session_grace configured)")

    def _op_set_realtime(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # Real-time pacing runs on the end device (the client library owns
        # the clock it paces against); the surrogate only records the
        # declared cadence for diagnostics.
        self.realtime_tick = args["tick_period"]
        self.realtime_tolerance = args["tolerance"]
        return {}

    def _op_gc_report(self, args: Dict[str, Any]) -> Dict[str, Any]:
        sweeps = 0
        items = 0
        bytes_ = 0
        for space in self.runtime.address_spaces():
            sweeps += space.gc.report.sweeps
            # Reclamation happens both in daemon sweeps and inline inside
            # consume calls; container counters see every path.
            for container in space.containers():
                items += container.stats().reclaimed
            bytes_ += space.gc.report.bytes_reclaimed
        if self._router is not None and self._router.fanout:
            sweeps, items, bytes_ = self._router.merged_gc_report(
                (sweeps, items, bytes_))
        return {"sweeps": sweeps, "items": items, "bytes": bytes_}

    def _op_inspect(self, args: Dict[str, Any]) -> Dict[str, Any]:
        from repro.runtime.inspect import snapshot

        return {"snapshot": self.codec.encode(snapshot(self.runtime))}

    def _op_stats(self, args: Dict[str, Any]) -> Dict[str, Any]:
        # JSON rather than the session codec: the snapshot is diagnostic
        # data for dashboards and scrapers (tools/top.py, the Prometheus
        # exporter), which should not need an XDR decoder.
        import json

        from repro.runtime.inspect import observability_snapshot

        payload = observability_snapshot(self.runtime)
        if self._router is not None:
            # Which transport each of this shard's dialled peer links
            # rides ("shm" or "tcp") — the merge keys them by shard so
            # dashboards can show the data plane per process.
            links = self._router.link_transports
            if links:
                payload["peer_links"] = {
                    str(sid): kind for sid, kind in links.items()}
        if self._router is not None and self._router.fanout:
            # Sharded server: fold every peer's snapshot in, so
            # dashboards and scrapers see one logical server.  Peer-door
            # sessions (fanout=False) answer locally — that is what
            # stops the fan-out from recursing shard-to-shard.
            payload = self._router.merged_stats(payload)
        return {"snapshot": json.dumps(payload, default=str).encode("utf-8")}

    def _op_shard_map(self, args: Dict[str, Any]) -> Dict[str, Any]:
        import json

        if self._router is None:
            # Single-process server: one shard, itself, no peers.
            return {"shard_id": 0, "shards": 1, "peers": b"{}"}
        peers = {str(sid): list(address)
                 for sid, address in self._router.peers.items()}
        return {
            "shard_id": self._router.shard_id,
            "shards": self._router.nshards,
            "peers": json.dumps(peers).encode("utf-8"),
        }

    def _op_trace_dump(self, args: Dict[str, Any]) -> Dict[str, Any]:
        import json

        from repro.util.trace import GLOBAL_TRACER

        max_events = args.get("max_events", 0)
        events = GLOBAL_TRACER.export(limit=max_events or None)
        payload = {
            "label": f"{self.runtime.name}",
            "enabled": GLOBAL_TRACER.enabled,
            "dropped": GLOBAL_TRACER.dropped,
            "recorded": GLOBAL_TRACER.recorded,
            "events": events,
        }
        if args.get("clear"):
            GLOBAL_TRACER.clear()
        return {"events": json.dumps(payload, default=str).encode("utf-8")}

    def _op_span_dump(self, args: Dict[str, Any]) -> Dict[str, Any]:
        import json

        from repro.obs.spans import GLOBAL_SPANS

        max_spans = args.get("max_spans", 0)
        payload = GLOBAL_SPANS.dump_payload(
            label=self.runtime.name, limit=max_spans or None)
        if args.get("clear"):
            GLOBAL_SPANS.clear()
        if self._router is not None and self._router.fanout:
            # Fold every shard worker's ring + histograms into one
            # cluster timeline (same non-recursion rule as STATS).
            payload = self._router.merged_spans(
                payload, max_spans=max_spans,
                clear=bool(args.get("clear")))
        return {"spans": json.dumps(payload, default=str).encode("utf-8")}

    def _op_prof_dump(self, args: Dict[str, Any]) -> Dict[str, Any]:
        import json

        from repro.obs.profiler import GLOBAL_PROFILER

        payload = GLOBAL_PROFILER.snapshot()
        payload["label"] = self.runtime.name
        if args.get("clear"):
            GLOBAL_PROFILER.clear()
        if self._router is not None and self._router.fanout:
            payload = self._router.merged_profile(
                payload, clear=bool(args.get("clear")))
        return {"profile": json.dumps(payload,
                                      default=str).encode("utf-8")}

    _DISPATCH = {
        ops.OP_HELLO: _op_hello,
        ops.OP_CREATE_CHANNEL: _op_create_channel,
        ops.OP_CREATE_QUEUE: _op_create_queue,
        ops.OP_ATTACH: _op_attach,
        ops.OP_DETACH: _op_detach,
        ops.OP_PUT: _op_put,
        ops.OP_GET: _op_get,
        ops.OP_CONSUME: _op_consume,
        ops.OP_CONSUME_UNTIL: _op_consume_until,
        ops.OP_NS_REGISTER: _op_ns_register,
        ops.OP_NS_UNREGISTER: _op_ns_unregister,
        ops.OP_NS_LOOKUP: _op_ns_lookup,
        ops.OP_NS_LIST: _op_ns_list,
        ops.OP_PING: _op_ping,
        ops.OP_BYE: _op_bye,
        ops.OP_SET_REALTIME: _op_set_realtime,
        ops.OP_GC_REPORT: _op_gc_report,
        ops.OP_INSPECT: _op_inspect,
        ops.OP_RESUME: _op_resume,
        ops.OP_STATS: _op_stats,
        ops.OP_TRACE_DUMP: _op_trace_dump,
        ops.OP_SHARD_MAP: _op_shard_map,
        ops.OP_NS_REFRESH: _op_ns_refresh,
        ops.OP_SPAN_DUMP: _op_span_dump,
        ops.OP_PROF_DUMP: _op_prof_dump,
    }

    # -- connection table -------------------------------------------------------------

    def has_connection(self, wire_id: int) -> bool:
        """Whether *wire_id* names a live connection of this session."""
        with self._lock:
            return wire_id in self._connections

    def connection_count(self) -> int:
        """Number of live wire connections (RESUME reports it back)."""
        with self._lock:
            return len(self._connections)

    def _connection(self, wire_id: int) -> Connection:
        with self._lock:
            connection = self._connections.get(wire_id)
        if connection is None:
            raise RpcError(f"unknown connection id {wire_id}")
        return connection

    def connection_container(self, wire_id: Any) -> Optional[str]:
        """Container name behind *wire_id*, or None (unknown id, or a
        forwarded connection whose container lives on another shard).
        Span instrumentation uses this to label lane-dequeue hops."""
        with self._lock:
            connection = self._connections.get(wire_id)
        if connection is None:
            return None
        container = getattr(connection, "container", None)
        if container is not None:
            return getattr(container, "name", None)
        return getattr(connection, "container_name", None)

    def _take_connection(self, wire_id: int) -> Connection:
        with self._lock:
            connection = self._connections.pop(wire_id, None)
        if connection is None:
            raise RpcError(f"unknown connection id {wire_id}")
        return connection

    # -- teardown ----------------------------------------------------------------------

    def close(self) -> None:
        """Release everything the device held: connections detach (so GC
        stops waiting on it) and reclaim forwarders are removed.

        Mirrors "the surrogate thread ceases to exist when the end device
        goes away" (§3.2.2).
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            connections = list(self._connections.values())
            self._connections.clear()
            handlers = list(self._handlers.values())
            self._handlers.clear()
        for connection in connections:
            connection.detach()
        for container, forwarder in handlers:
            try:
                container.remove_reclaim_handler(forwarder)
            except ValueError:
                pass  # container already destroyed
