"""The in-process cluster runtime.

A :class:`Runtime` hosts the "body" of the Octopus: any number of address
spaces (the paper's ``N_1 ... N_k`` plus ``N_M``), a name server, and the
attach machinery that hands threads connections to containers anywhere in
the computation.

Memory isolation between address spaces is real even though they share an
OS process: a connection that crosses spaces is an
:class:`IsolatedConnection`, which serializes every value through the
container's serializer handler (or the runtime's default codec) on both
``put`` and ``get``.  No object reference ever crosses a space boundary,
so programs observe exactly the semantics they would get from separate
processes — at an honest marshalling cost, which is what the paper's
micro-benchmarks charge for.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.core.channel import Channel
from repro.core.connection import Connection, ConnectionMode
from repro.core.container import Container
from repro.core.squeue import SQueue
from repro.core.threads import StampedeThread
from repro.core.timestamps import Timestamp, VirtualTime
from repro.errors import (
    AddressSpaceError,
    NameNotBoundError,
    RuntimeStateError,
)
from repro.marshal import get_codec
from repro.runtime.address_space import AddressSpace
from repro.runtime.nameserver import NameRecord, NameServer
from repro.util.logging import get_logger

_log = get_logger("runtime")


class IsolatedConnection:
    """A connection whose values are marshalled across the space boundary.

    Mirrors the :class:`~repro.core.connection.Connection` API so
    application code is oblivious to container placement — the paper's
    "regardless of the physical location of the threads, channels, and
    queues" (§3.1).
    """

    def __init__(self, inner: Connection, codec_name: str) -> None:
        self._inner = inner
        self._codec = get_codec(codec_name)

    # -- marshalling ---------------------------------------------------------

    def _outbound(self, value: Any) -> Tuple[Any, int]:
        """Serialize + rehydrate: the value that crosses the boundary."""
        serializer = self._inner.container.handlers.serializer
        deserializer = self._inner.container.handlers.deserializer
        if serializer is not None and deserializer is not None:
            data = serializer(value)
            return deserializer(data), len(data)
        data = self._codec.encode(value)
        return self._codec.decode(data), len(data)

    # -- Connection API -------------------------------------------------------

    @property
    def connection_id(self) -> int:
        """The wrapped connection's id."""
        return self._inner.connection_id

    @property
    def mode(self) -> ConnectionMode:
        """The wrapped connection's direction."""
        return self._inner.mode

    @property
    def container(self) -> Container:
        """The container this connection is attached to."""
        return self._inner.container

    @property
    def detached(self) -> bool:
        """Whether the wrapped connection is detached."""
        return self._inner.detached

    @property
    def interest_floor(self) -> Timestamp:
        """The wrapped connection's interest floor."""
        return self._inner.interest_floor

    def put(self, timestamp: Timestamp, value: Any,
            size: Optional[int] = None, block: bool = True,
            timeout: Optional[float] = None) -> None:
        """Marshal *value* across the boundary and put it."""
        copied, wire_size = self._outbound(value)
        self._inner.put(
            timestamp, copied,
            size=size if size is not None else wire_size,
            block=block, timeout=timeout,
        )

    def get(self, timestamp: VirtualTime, block: bool = True,
            timeout: Optional[float] = None) -> Tuple[Timestamp, Any]:
        """Get an item; the returned value is a marshalled copy.

        When the container exposes raw item records (channels), the
        serializer runs at most once per item — the encoded bytes are
        pinned on the item and every fan-out consumer deserializes its
        own private copy from the cached buffer.  Queues keep the
        serialize-per-get path: a dequeued item has exactly one consumer.
        """
        if hasattr(self._inner.container, "get_item"):
            handlers = self._inner.container.handlers
            key, serialize, deserialize = handlers.outbound(self._codec)
            item = self._inner.get_item(timestamp, block=block,
                                        timeout=timeout)
            data, _hit = item.encoded_payload(key, serialize)
            return item.timestamp, deserialize(data)
        ts, value = self._inner.get(timestamp, block=block, timeout=timeout)
        copied, _wire_size = self._outbound(value)
        return ts, copied

    def consume(self, timestamp: Timestamp) -> None:
        """Declare the item at *timestamp* garbage for this consumer."""
        self._inner.consume(timestamp)

    def consume_until(self, timestamp: Timestamp) -> None:
        """Raise the interest floor to *timestamp*."""
        self._inner.consume_until(timestamp)

    def detach(self) -> None:
        """Detach the underlying connection."""
        self._inner.detach()

    def __enter__(self) -> "IsolatedConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def __repr__(self) -> str:
        return f"<IsolatedConnection over {self._inner!r}>"


class Runtime:
    """An in-process D-Stampede cluster.

    Parameters
    ----------
    name:
        Application name (log/diagnostic label).
    gc_interval:
        Sweep period for every address space's collector.
    default_codec:
        Wire format for cross-space values without a serializer handler.
    """

    def __init__(self, name: str = "dstampede", gc_interval: float = 0.05,
                 default_codec: str = "xdr") -> None:
        self.name = name
        self.nameserver = NameServer()
        self.default_codec = default_codec
        self._gc_interval = gc_interval
        self._spaces: "dict[str, AddressSpace]" = {}
        self._lock = threading.Lock()
        self._shutdown = False

    # -- address spaces ----------------------------------------------------------

    def create_address_space(self, name: str) -> AddressSpace:
        """Create a protection domain called *name* with a running GC."""
        with self._lock:
            self._check_alive()
            if name in self._spaces:
                raise AddressSpaceError(
                    f"address space {name!r} already exists"
                )
            space = AddressSpace(name, gc_interval=self._gc_interval,
                                 start_gc=True)
            self._spaces[name] = space
        self.nameserver.register(
            NameRecord(name=f"space:{name}", kind="address_space",
                       address_space=name)
        )
        return space

    def address_space(self, name: str) -> AddressSpace:
        """Look up an address space by name."""
        with self._lock:
            try:
                return self._spaces[name]
            except KeyError:
                raise AddressSpaceError(
                    f"no address space named {name!r}"
                ) from None

    def address_spaces(self) -> List[AddressSpace]:
        """All live address spaces."""
        with self._lock:
            return list(self._spaces.values())

    def destroy_address_space(self, name: str) -> None:
        """Tear down a space: dynamic component departure."""
        with self._lock:
            space = self._spaces.pop(name, None)
        if space is None:
            return
        for container in space.containers():
            try:
                self.nameserver.unregister(container.name)
            except NameNotBoundError:
                pass
        try:
            self.nameserver.unregister(f"space:{name}")
        except NameNotBoundError:
            pass
        space.destroy()

    # -- containers -----------------------------------------------------------------

    def create_channel(self, name: str, space: str,
                       capacity: Optional[int] = None,
                       overflow: str = Channel.OVERFLOW_BLOCK,
                       metadata: Optional[dict] = None) -> Channel:
        """Create a channel homed in *space*, registered with the name
        server so any late-joining component can find it."""
        channel = self.address_space(space).create_channel(
            name, capacity=capacity, overflow=overflow
        )
        self.nameserver.register(
            NameRecord(name=name, kind="channel", address_space=space,
                       metadata=metadata or {})
        )
        return channel

    def create_queue(self, name: str, space: str,
                     capacity: Optional[int] = None,
                     auto_consume: bool = False,
                     metadata: Optional[dict] = None) -> SQueue:
        """Create a queue homed in *space* and register it."""
        queue = self.address_space(space).create_queue(
            name, capacity=capacity, auto_consume=auto_consume
        )
        self.nameserver.register(
            NameRecord(name=name, kind="queue", address_space=space,
                       metadata=metadata or {})
        )
        return queue

    def lookup_container(self, name: str) -> Container:
        """Resolve a container by its system-wide name.

        :raises NameNotBoundError: unknown name or stale binding.
        """
        record = self.nameserver.lookup(name)
        container = self.address_space(record.address_space) \
            .get_container(name)
        if container is None:
            raise NameNotBoundError(
                f"name {name!r} is bound but its container is gone"
            )
        return container

    def destroy_container(self, name: str) -> None:
        """Unregister and destroy the named container."""
        record = self.nameserver.unregister(name)
        self.address_space(record.address_space).remove_container(name)

    def migrate_container(self, name: str, to_space: str):
        """Move a container to another address space (load balancing).

        Implemented as checkpoint + restore + name rebind, so live items
        and GC state travel intact.  Existing connections do NOT follow:
        the old instance is destroyed, waking blocked threads with
        :class:`~repro.errors.ContainerDestroyedError`, and consumers
        re-attach by name — the same re-join discipline end devices
        already follow.  Returns the new container.
        """
        from repro.core.persistence import checkpoint as _checkpoint
        from repro.core.persistence import restore as _restore

        record = self.nameserver.lookup(name)
        if record.address_space == to_space:
            return self.lookup_container(name)
        destination = self.address_space(to_space)  # validate early
        source_space = self.address_space(record.address_space)
        container = self.lookup_container(name)
        blob = _checkpoint(container, codec=self.default_codec)
        replacement = _restore(blob, codec=self.default_codec)
        self.nameserver.unregister(name)
        source_space.remove_container(name)
        destination._add_container(replacement)
        self.nameserver.register(
            NameRecord(name=name, kind=record.kind,
                       address_space=to_space, metadata=record.metadata)
        )
        _log.info("migrated %s %r from %r to %r",
                  record.kind, name, record.address_space, to_space)
        return replacement

    # -- attach ------------------------------------------------------------------------

    def attach(self, container_name: str, mode: ConnectionMode,
               from_space: Optional[str] = None, owner: str = "",
               attention_filter: Optional[Callable] = None,
               wait: Optional[float] = None):
        """Connect to a named container from *from_space*.

        Returns a direct :class:`~repro.core.connection.Connection` when
        the caller shares the container's home space, else an
        :class:`IsolatedConnection` that marshals every crossing value.

        Parameters
        ----------
        wait:
            If set, block up to this many seconds for the name to appear —
            the dynamic-join idiom (camera threads attach to a mixer
            channel that may not exist yet).
        """
        self._check_alive()
        if wait is not None:
            self.nameserver.wait_for(container_name, timeout=wait)
        container = self.lookup_container(container_name)
        record = self.nameserver.lookup(container_name)
        connection = container.attach(
            mode, owner=owner, attention_filter=attention_filter
        )
        if from_space is None or from_space == record.address_space:
            return connection
        return IsolatedConnection(connection, self.default_codec)

    # -- threads ----------------------------------------------------------------------

    def spawn(self, space: str, target: Callable[..., Any], *args: Any,
              name: Optional[str] = None, **kwargs: Any) -> StampedeThread:
        """Spawn a thread homed in *space*."""
        return self.address_space(space).spawn(
            target, *args, name=name, **kwargs
        )

    # -- lifecycle ----------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._shutdown:
            raise RuntimeStateError(f"runtime {self.name!r} is shut down")

    def shutdown(self) -> None:
        """Stop every address space and clear the name server."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            spaces = list(self._spaces.values())
            self._spaces.clear()
        for space in spaces:
            space.destroy()
        self.nameserver.clear()
        _log.info("runtime %r shut down (%d spaces)",
                  self.name, len(spaces))

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
