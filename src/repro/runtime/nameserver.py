"""The name server.

"Application threads can register (and un-register) all pertinent
information (such as names of channels and queues, as well as their
intended use in the application) with this name server.  Any new thread
that starts up in the application anywhere in the entire network ... can
query this name server to determine resources of interest" (§3.1).

Bindings map a system-wide unique name to a :class:`NameRecord`.  A
blocking :meth:`NameServer.wait_for` supports the common dynamic-join
pattern: a late-starting component waits until the resource it needs is
registered, instead of polling.

Bindings may carry a **lease**: registrations with a TTL must be
refreshed (the registering device's heartbeat PING does it) or they are
purged — so a tentacle that silently falls off the network stops
advertising resources it can no longer serve.  Expiry is enforced lazily
on every read *and* eagerly by :meth:`NameServer.purge_expired` (the
server's housekeeping calls it), so a binding never outlives its lease
observably.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NameAlreadyBoundError, NameNotBoundError


@dataclass(frozen=True)
class NameRecord:
    """One binding in the name server.

    ``kind`` is free-form but conventional values are ``"channel"``,
    ``"queue"``, ``"thread"``, and ``"address_space"``.  ``metadata`` holds
    the "intended use in the application" — anything the registering
    component wants discoverers to know (it must stay in the codec domain
    if remote clients are to read it).
    """

    name: str
    kind: str
    address_space: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


class NameServer:
    """Thread-safe name registry with blocking lookup."""

    def __init__(self) -> None:
        self._bindings: Dict[str, NameRecord] = {}
        #: name -> (ttl, absolute monotonic expiry) for leased bindings.
        self._leases: Dict[str, Tuple[float, float]] = {}
        self._lock = threading.Lock()
        self._bound = threading.Condition(self._lock)

    # -- lease plumbing (callers hold no lock) -------------------------------

    def _purge_locked(self) -> List[str]:
        """Drop expired leases; caller holds the lock.  Returns names."""
        if not self._leases:
            return []
        now = time.monotonic()
        expired = [name for name, (_ttl, expiry) in self._leases.items()
                   if expiry <= now]
        for name in expired:
            del self._leases[name]
            self._bindings.pop(name, None)
        return expired

    def register(self, record: NameRecord,
                 ttl: Optional[float] = None) -> None:
        """Bind ``record.name``, optionally under a lease of *ttl* seconds.

        A leased binding is purged once *ttl* elapses without a
        :meth:`refresh`; an unleased binding lives until unregistered.

        :raises NameAlreadyBoundError: the name is taken (names are
            system-wide unique, §3.1).
        """
        if ttl is not None and ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        with self._lock:
            self._purge_locked()
            if record.name in self._bindings:
                raise NameAlreadyBoundError(
                    f"name {record.name!r} is already bound to a "
                    f"{self._bindings[record.name].kind}"
                )
            self._bindings[record.name] = record
            if ttl is not None:
                self._leases[record.name] = (ttl, time.monotonic() + ttl)
            self._bound.notify_all()

    def refresh(self, name: str) -> bool:
        """Extend *name*'s lease by its original TTL.

        Returns False (instead of raising) when the name is unleased,
        unbound, or already expired — heartbeats race expiry by design
        and must not blow up the caller.
        """
        with self._lock:
            self._purge_locked()
            lease = self._leases.get(name)
            if lease is None:
                return False
            ttl = lease[0]
            self._leases[name] = (ttl, time.monotonic() + ttl)
            return True

    def lease_remaining(self, name: str) -> Optional[float]:
        """Seconds until *name*'s lease expires; None if unleased."""
        with self._lock:
            lease = self._leases.get(name)
            if lease is None:
                return None
            return max(0.0, lease[1] - time.monotonic())

    def purge_expired(self) -> List[str]:
        """Eagerly drop every expired lease; returns the purged names."""
        with self._lock:
            return self._purge_locked()

    def unregister(self, name: str) -> NameRecord:
        """Remove and return the binding for *name*.

        :raises NameNotBoundError: nothing bound.
        """
        with self._lock:
            self._purge_locked()
            self._leases.pop(name, None)
            try:
                return self._bindings.pop(name)
            except KeyError:
                raise NameNotBoundError(f"name {name!r} is not bound") \
                    from None

    def lookup(self, name: str) -> NameRecord:
        """Return the binding for *name*.

        :raises NameNotBoundError: nothing bound.
        """
        with self._lock:
            self._purge_locked()
            try:
                return self._bindings[name]
            except KeyError:
                raise NameNotBoundError(f"name {name!r} is not bound") \
                    from None

    def wait_for(self, name: str,
                 timeout: Optional[float] = None) -> NameRecord:
        """Block until *name* is bound, then return the record.

        :raises NameNotBoundError: *timeout* expired first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._purge_locked()
            while name not in self._bindings:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise NameNotBoundError(
                            f"name {name!r} not bound within {timeout}s"
                        )
                self._bound.wait(timeout=remaining)
                self._purge_locked()
            return self._bindings[name]

    def contains(self, name: str) -> bool:
        """Whether *name* is currently bound."""
        with self._lock:
            self._purge_locked()
            return name in self._bindings

    def list(self, kind: Optional[str] = None) -> List[NameRecord]:
        """All bindings, optionally filtered by kind, sorted by name."""
        with self._lock:
            self._purge_locked()
            records = list(self._bindings.values())
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return sorted(records, key=lambda r: r.name)

    def clear(self) -> None:
        """Drop every binding (runtime shutdown)."""
        with self._lock:
            self._bindings.clear()
            self._leases.clear()

    def __len__(self) -> int:
        with self._lock:
            self._purge_locked()
            return len(self._bindings)
