"""The name server.

"Application threads can register (and un-register) all pertinent
information (such as names of channels and queues, as well as their
intended use in the application) with this name server.  Any new thread
that starts up in the application anywhere in the entire network ... can
query this name server to determine resources of interest" (§3.1).

Bindings map a system-wide unique name to a :class:`NameRecord`.  A
blocking :meth:`NameServer.wait_for` supports the common dynamic-join
pattern: a late-starting component waits until the resource it needs is
registered, instead of polling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import NameAlreadyBoundError, NameNotBoundError


@dataclass(frozen=True)
class NameRecord:
    """One binding in the name server.

    ``kind`` is free-form but conventional values are ``"channel"``,
    ``"queue"``, ``"thread"``, and ``"address_space"``.  ``metadata`` holds
    the "intended use in the application" — anything the registering
    component wants discoverers to know (it must stay in the codec domain
    if remote clients are to read it).
    """

    name: str
    kind: str
    address_space: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


class NameServer:
    """Thread-safe name registry with blocking lookup."""

    def __init__(self) -> None:
        self._bindings: Dict[str, NameRecord] = {}
        self._lock = threading.Lock()
        self._bound = threading.Condition(self._lock)

    def register(self, record: NameRecord) -> None:
        """Bind ``record.name``.

        :raises NameAlreadyBoundError: the name is taken (names are
            system-wide unique, §3.1).
        """
        with self._lock:
            if record.name in self._bindings:
                raise NameAlreadyBoundError(
                    f"name {record.name!r} is already bound to a "
                    f"{self._bindings[record.name].kind}"
                )
            self._bindings[record.name] = record
            self._bound.notify_all()

    def unregister(self, name: str) -> NameRecord:
        """Remove and return the binding for *name*.

        :raises NameNotBoundError: nothing bound.
        """
        with self._lock:
            try:
                return self._bindings.pop(name)
            except KeyError:
                raise NameNotBoundError(f"name {name!r} is not bound") \
                    from None

    def lookup(self, name: str) -> NameRecord:
        """Return the binding for *name*.

        :raises NameNotBoundError: nothing bound.
        """
        with self._lock:
            try:
                return self._bindings[name]
            except KeyError:
                raise NameNotBoundError(f"name {name!r} is not bound") \
                    from None

    def wait_for(self, name: str,
                 timeout: Optional[float] = None) -> NameRecord:
        """Block until *name* is bound, then return the record.

        :raises NameNotBoundError: *timeout* expired first.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while name not in self._bindings:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise NameNotBoundError(
                            f"name {name!r} not bound within {timeout}s"
                        )
                self._bound.wait(timeout=remaining)
            return self._bindings[name]

    def contains(self, name: str) -> bool:
        """Whether *name* is currently bound."""
        with self._lock:
            return name in self._bindings

    def list(self, kind: Optional[str] = None) -> List[NameRecord]:
        """All bindings, optionally filtered by kind, sorted by name."""
        with self._lock:
            records = list(self._bindings.values())
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return sorted(records, key=lambda r: r.name)

    def clear(self) -> None:
        """Drop every binding (runtime shutdown)."""
        with self._lock:
            self._bindings.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._bindings)
