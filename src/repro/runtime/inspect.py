"""Cluster introspection.

Continuous applications need to answer "what is the cluster holding
right now?" without stopping it: which containers exist, how much live
data each holds, who is attached, what the collectors have reclaimed.
:func:`snapshot` renders the whole runtime as a codec-domain value, so
the same structure serves local diagnostics, the INSPECT wire operation
(any end device can ask its cluster), and tests asserting global
invariants like "no live items after shutdown of all consumers".
"""

from __future__ import annotations

from typing import Any, Dict

from repro.runtime.runtime import Runtime


def container_snapshot(container: Any) -> Dict[str, Any]:
    """One container's state as plain data."""
    stats = container.stats()
    return {
        "name": container.name,
        "kind": container.KIND,
        "capacity": container.capacity,
        "destroyed": container.destroyed,
        "puts": stats.puts,
        "gets": stats.gets,
        "consumes": stats.consumes,
        "reclaimed": stats.reclaimed,
        "bytes_in": stats.bytes_in,
        "live_items": stats.live_items,
        "live_bytes": stats.live_bytes,
        "peak_items": stats.peak_items,
        "peak_bytes": stats.peak_bytes,
        "input_connections": stats.input_connections,
        "output_connections": stats.output_connections,
        "connections": [
            {
                "id": connection.connection_id,
                "mode": connection.mode.value,
                "owner": connection.owner,
                "interest_floor": connection.interest_floor,
            }
            for connection in container.connections()
        ],
    }


def space_snapshot(space: Any) -> Dict[str, Any]:
    """One address space's state as plain data."""
    return {
        "name": space.name,
        "destroyed": space.destroyed,
        "gc_running": space.gc.running,
        "gc_sweeps": space.gc.report.sweeps,
        "gc_items_reclaimed": space.gc.report.items_reclaimed,
        "gc_bytes_reclaimed": space.gc.report.bytes_reclaimed,
        "threads": [
            {"name": t.name, "alive": t.alive, "failed": t.failed}
            for t in space.threads()
        ],
        "containers": [
            container_snapshot(c) for c in space.containers()
        ],
    }


def snapshot(runtime: Runtime) -> Dict[str, Any]:
    """The full cluster state as a codec-domain value."""
    return {
        "runtime": runtime.name,
        "names": [
            {
                "name": record.name,
                "kind": record.kind,
                "space": record.address_space,
                # Leased bindings expose their remaining time so "who is
                # about to vanish?" is answerable; None = no lease.
                "lease_remaining": runtime.nameserver.lease_remaining(
                    record.name
                ),
            }
            for record in runtime.nameserver.list()
        ],
        "spaces": [
            space_snapshot(space) for space in runtime.address_spaces()
        ],
    }


def observability_snapshot(runtime: Runtime) -> Dict[str, Any]:
    """The STATS wire payload: metrics registry + liveness per container.

    Occupancy, oldest-item age and blocking-connection suspects are
    computed here, lazily, at snapshot time — the hot paths pay nothing
    for them.  Everything is plain JSON-able data so scrapers
    (``tools/top.py``, the Prometheus exporter) need no codec.
    """
    import time

    from repro.obs.metrics import GLOBAL_METRICS
    from repro.obs.slo import GLOBAL_SLO
    from repro.obs.spans import GLOBAL_SPANS

    now = time.monotonic()
    containers = []
    spaces = []
    for space in runtime.address_spaces():
        report = space.gc.report
        spaces.append({
            "name": space.name,
            "gc_running": space.gc.running,
            "gc_sweeps": report.sweeps,
            "gc_items_reclaimed": report.items_reclaimed,
            "gc_bytes_reclaimed": report.bytes_reclaimed,
            "gc_containers_swept": report.containers_swept,
            "gc_containers_skipped": report.containers_skipped,
        })
        for container in space.containers():
            stats = container.stats()
            age = container.oldest_live_age(now=now)
            entry = {
                "name": container.name,
                "kind": container.KIND,
                "space": space.name,
                "capacity": container.capacity,
                "live_items": stats.live_items,
                "live_bytes": stats.live_bytes,
                "puts": stats.puts,
                "gets": stats.gets,
                "consumes": stats.consumes,
                "reclaimed": stats.reclaimed,
                # Drop-oldest overflow evictions (0 for queues and
                # blocking channels); feeds the SLO delivery ratio.
                "evictions": getattr(container, "evictions", 0),
                "oldest_age": age,
                "input_connections": stats.input_connections,
                "output_connections": stats.output_connections,
            }
            # Suspect lists only for containers actually holding data —
            # walking every connection of every idle container would
            # make STATS itself a load on big clusters.
            if age is not None:
                entry["blocking"] = container.blocking_connections()
            containers.append(entry)
    payload = {
        "runtime": runtime.name,
        "monotonic": now,
        "spaces": spaces,
        "containers": containers,
    }
    if GLOBAL_SPANS.enabled or GLOBAL_SPANS.recorded:
        # Histograms only (the hop-offset and e2e information-latency
        # views); the span ring itself travels via SPAN_DUMP.
        payload["spans"] = GLOBAL_SPANS.snapshot()
    if GLOBAL_SLO.targets:
        GLOBAL_SLO.check(containers=containers,
                         e2e=payload.get("spans", {}).get("e2e", {}),
                         now=now)
        payload["slo"] = GLOBAL_SLO.status_payload()
    # Metrics go last: the SLO check above may have just incremented
    # the breach counter, and this snapshot should already show it.
    payload["metrics"] = GLOBAL_METRICS.snapshot()
    return payload


def total_live_items(runtime: Runtime) -> int:
    """Live items across every container (leak checks in tests)."""
    return sum(
        container.stats().live_items
        for space in runtime.address_spaces()
        for container in space.containers()
    )


def render(state: Dict[str, Any]) -> str:
    """Human-readable rendering of a snapshot."""
    lines = [f"runtime {state['runtime']!r}: "
             f"{len(state['names'])} names, "
             f"{len(state['spaces'])} address spaces"]
    for space in state["spaces"]:
        lines.append(
            f"  space {space['name']!r}: "
            f"gc={'on' if space['gc_running'] else 'off'} "
            f"(reclaimed {space['gc_items_reclaimed']} items), "
            f"{len(space['threads'])} threads"
        )
        for container in space["containers"]:
            lines.append(
                f"    {container['kind']} {container['name']!r}: "
                f"{container['live_items']} live "
                f"({container['live_bytes']} B), "
                f"{container['puts']} puts / "
                f"{container['reclaimed']} reclaimed, "
                f"{container['input_connections']}in/"
                f"{container['output_connections']}out"
            )
    return "\n".join(lines)
