"""Sharded multi-process space-time memory — the Octopus body.

The paper's deployment answer to a CPU-bound cluster node is the
Octopus body itself: "the Stampede server library ... runs over CLF
with shared memory within an SMP" — many workers, one logical server.
A single CPython process cannot use more than one core for container
operations (the GIL serialises them; BENCH_scale.json shows puts/s flat
across lane counts), so this module escapes sideways: it forks
``shards=N`` **worker processes**, each a complete single-process
server — its own :class:`~repro.runtime.reactor.Reactor`, its own
:class:`~repro.runtime.lanes.LanePool`, its own
:class:`~repro.runtime.runtime.Runtime` — and splits the space-time
memory between them by **consistent hash of container name**.

Three mechanisms make N processes look like one server:

**Accept sharding.**  Every worker (and the parent, which serves as
shard 0) listens on the *same* front-door port with ``SO_REUSEPORT``;
the kernel spreads inbound device connections across the listeners by
4-tuple hash.  No user-space load balancer, no handoff: a device's
connection lands on one shard and stays there.  The parent additionally
holds a bound-but-not-listening reservation socket on the port for the
server's whole life, so an ephemeral ``port=0`` bind is race-free (a
TCP socket that is bound but never listens receives no connections).

**Consistent-hash ownership.**  A :class:`HashRing` (SHA-1, virtual
nodes, no process-randomised ``hash()`` anywhere) maps every container
name to exactly one owner shard.  Every process builds the identical
ring from ``(nshards, vnodes)`` alone — the ring never travels.

**A control plane.**  Each shard runs a second, private
:class:`~repro.runtime.server.StampedeServer` — its **peer door** — on
an ephemeral port.  The doors' addresses are exchanged over the fork
pipes at startup (the shard map; clients can read it with the
SHARD_MAP wire op).  When a device's operation names a container the
accepting shard does not own, the shard's :class:`ShardRouter` forwards
it through a shared :class:`~repro.client.client.StampedeClient` link
to the owner's peer door — the surrogate/service machinery on the far
side is exactly the one end devices use, so marshalling, blocking
semantics, reclaim piggybacking and error mapping need no second
implementation.  Peer-door sessions carry a ``fanout=False`` router
view, which keeps aggregate operations (STATS, GC_REPORT, NS_LIST)
answering locally — a fan-out op forwarded to a peer must not fan out
again.

Ordering: the paper's contract is per-connection, per-container
ordering, which sharding preserves for free — one container lives on
exactly one shard, and a device connection's operations execute in
issue order whether they run locally or ride one ordered peer link.
There is no cross-container, cross-shard ordering, but there never was
one cross-lane either (see docs/ARCHITECTURE.md for the full
contract).

``shards=1`` builds none of this — no fork, no ring, no peer door —
and is byte-for-byte the single-process server, which is what lets CI
run the whole suite under ``DSTAMPEDE_SHARDS=1`` as an oracle.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import socket
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StampedeError
from repro.obs.aggregate import (
    merge_profile_dumps,
    merge_span_dumps,
    merge_stats_snapshots,
)
from repro.obs.metrics import GLOBAL_METRICS
from repro.obs import spans as _spanmod
from repro.util.logging import get_logger

_log = get_logger("runtime.shards")

#: Environment override for the default shard count.
SHARDS_ENV = "DSTAMPEDE_SHARDS"

Address = Tuple[str, int]


def resolve_shards(explicit: Optional[int] = None) -> int:
    """The effective shard count: *explicit*, else ``DSTAMPEDE_SHARDS``,
    else 1 (single-process, the seed behaviour)."""
    if explicit is not None:
        count = int(explicit)
    else:
        env = os.environ.get(SHARDS_ENV, "").strip()
        count = int(env) if env else 1
    if count < 1:
        raise ValueError(f"shards must be >= 1, got {count}")
    return count


# The child reinitialises this lock right after fork: a lane/GC/reactor
# thread of the parent may hold it at the fork instant, and those
# threads do not exist in the child to ever release it.
if hasattr(os, "register_at_fork"):  # pragma: no branch - always on Linux
    os.register_at_fork(
        after_in_child=lambda: setattr(
            GLOBAL_METRICS, "_lock", threading.Lock())
    )


class HashRing:
    """Deterministic consistent-hash ring over shard ids.

    SHA-1 based so every process — parent, forked worker, test — maps a
    name to the same owner regardless of ``PYTHONHASHSEED``.  Virtual
    nodes smooth the split: with the default 64 per shard, container
    counts per shard stay within a few percent of even for realistic
    name sets.
    """

    def __init__(self, nshards: int, vnodes: int = 64) -> None:
        if nshards < 1:
            raise ValueError("need at least one shard")
        self.nshards = nshards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(nshards):
            for vnode in range(vnodes):
                digest = hashlib.sha1(
                    f"shard-{shard}/vnode-{vnode}".encode("ascii")
                ).digest()
                points.append(
                    (int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _point(name: str) -> int:
        return int.from_bytes(
            hashlib.sha1(name.encode("utf-8")).digest()[:8], "big")

    def owner(self, name: str) -> int:
        """The shard id owning container *name*."""
        if self.nshards == 1:
            return 0
        idx = bisect_right(self._hashes, self._point(name))
        return self._owners[idx % len(self._owners)]


def local_name(base: str, shard_id: int, nshards: int,
               ring: Optional[HashRing] = None) -> str:
    """A container name derived from *base* that shard *shard_id* owns.

    Clients that learned their shard via the SHARD_MAP op use this to
    place containers on the shard their connection landed on, making
    every operation shard-local (the scaling playbook in
    docs/SCALING.md).  Returns *base* itself when it already lands
    right, else the first ``base~sK`` suffix that does.
    """
    ring = ring or HashRing(nshards)
    if ring.owner(base) == shard_id:
        return base
    attempt = 0
    while True:
        name = f"{base}~s{attempt}"
        if ring.owner(name) == shard_id:
            return name
        attempt += 1


@dataclass(frozen=True)
class ShardConfig:
    """Everything a forked worker needs to build its shard (picklable)."""

    shard_id: int
    shards: int
    host: str
    port: int
    device_spaces: Tuple[str, ...]
    lease_timeout: Optional[float]
    session_grace: Optional[float]
    lanes: Optional[int]
    gc_interval: float
    runtime_name: str


class _RouterShared:
    """State one shard's front-door router and peer-door view share:
    the ring, the shard map, the lazily-dialled peer links, and the
    reclaim-interest registry."""

    def __init__(self, nshards: int) -> None:
        self.ring = HashRing(nshards)
        self.peers: Dict[int, Address] = {}
        #: shard id -> SHM-door path (None = peer offers no SHM door).
        self.shm_doors: Dict[int, Optional[str]] = {}
        #: shard id -> "shm" | "tcp", recorded at dial time (the STATS
        #: peer-link transport column).
        self.link_transports: Dict[int, str] = {}
        self._clients: Dict[int, Any] = {}
        self._lock = threading.Lock()
        #: container name -> {SessionService: refcount} of sessions that
        #: hold a consuming forwarded connection and must receive the
        #: container's reclaim notifications.
        self._interest: Dict[str, Dict[Any, int]] = {}
        self.closed = False

    def client(self, shard_id: int, my_shard: int):
        """The shared client link to *shard_id*'s peer door (lazy)."""
        with self._lock:
            client = self._clients.get(shard_id)
            if client is not None:
                return client
            if self.closed:
                raise StampedeError("shard router is closed")
            address = self.peers.get(shard_id)
            if address is None:
                raise StampedeError(
                    f"no peer-door address for shard {shard_id}")
            from repro.client.client import StampedeClient

            client = StampedeClient(
                address[0], address[1],
                client_name=f"shard{my_shard}-link{shard_id}",
                codec="xdr", reconnect=False, batching=False,
                on_reclaim=self._dispatch_reclaim,
                connect=self._dial_factory(shard_id, address),
            )
            self._clients[shard_id] = client
            return client

    def _dial_factory(self, shard_id: int, address: Address):
        """The peer link's transport-selection seam.

        Shards of one cluster are co-host by construction (they fork
        from one parent), so when the peer advertised an SHM door and
        ``DSTAMPEDE_SHM`` allows it, the link dials shared memory; any
        dial failure — door gone, env restrictions, platform without
        unix sockets — falls back to loopback TCP *transparently*: the
        same :class:`StampedeClient` above carries the same retry /
        RESUME ladder and the same dedup keys either way.
        """
        from repro.transport import shm as shm_transport
        from repro.transport.tcp import connect_tcp

        door = self.shm_doors.get(shard_id)

        def dial():
            if door is not None and shm_transport.shm_enabled():
                try:
                    connection = shm_transport.connect_shm(door)
                except (OSError, StampedeError) as exc:
                    _log.warning(
                        "SHM dial to shard %d failed (%s); "
                        "falling back to TCP", shard_id, exc)
                else:
                    self.link_transports[shard_id] = "shm"
                    return connection
            self.link_transports[shard_id] = "tcp"
            return connect_tcp(address)

        return dial

    # -- reclaim-interest registry ----------------------------------------------

    def add_interest(self, name: str, service: Any) -> None:
        with self._lock:
            holders = self._interest.setdefault(name, {})
            holders[service] = holders.get(service, 0) + 1

    def drop_interest(self, name: str, service: Any) -> None:
        with self._lock:
            holders = self._interest.get(name)
            if not holders:
                return
            count = holders.get(service, 0) - 1
            if count > 0:
                holders[service] = count
            else:
                holders.pop(service, None)
                if not holders:
                    self._interest.pop(name, None)

    def _dispatch_reclaim(self, container: str, timestamp: int) -> None:
        with self._lock:
            services = list(self._interest.get(container, ()))
        for service in services:
            try:
                service.note_reclaim(container, timestamp)
            except Exception:  # noqa: BLE001 - one session must not block
                _log.exception("reclaim dispatch to a session failed")

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
            clients = list(self._clients.values())
            self._clients.clear()
            self._interest.clear()
        for client in clients:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass


class ShardRouter:
    """One shard's view of the cluster: who owns what, and the links.

    The front-door router has ``fanout=True``: it answers aggregate
    operations (STATS, GC_REPORT, NS_LIST) by merging its peers'
    answers.  :meth:`peer_view` derives the ``fanout=False`` router the
    shard's *peer door* uses — same ring, same links, same reclaim
    registry — so a forwarded aggregate op answers locally and the
    fan-out can never recurse.
    """

    def __init__(self, shard_id: int, nshards: int, fanout: bool = True,
                 _shared: Optional[_RouterShared] = None) -> None:
        self.shard_id = shard_id
        self.nshards = nshards
        self.fanout = fanout
        self._shared = _shared or _RouterShared(nshards)
        self.ring = self._shared.ring

    # -- topology ----------------------------------------------------------------

    @property
    def peers(self) -> Dict[int, Address]:
        """Shard id -> peer-door address, every shard included."""
        return dict(self._shared.peers)

    def set_peers(self, peers: Dict[int, Any]) -> None:
        """Install the shard map (startup handshake).

        Values are either a plain TCP ``(host, port)`` or the extended
        ``((host, port), shm_door)`` pair the fork handshake ships —
        the SHM door is the peer's unix-socket rendezvous path (None
        when the peer opened no door, e.g. ``DSTAMPEDE_SHM=0``).  The
        SHARD_MAP wire op keeps exposing TCP addresses only: doors are
        process-private paths, meaningless to an end device.
        """
        addresses: Dict[int, Address] = {}
        doors: Dict[int, Optional[str]] = {}
        for sid, entry in peers.items():
            sid = int(sid)
            if entry and isinstance(entry[0], (tuple, list)):
                (host, port), door = entry
            else:
                (host, port), door = entry, None
            addresses[sid] = (host, int(port))
            doors[sid] = door
        self._shared.peers = addresses
        self._shared.shm_doors = doors

    @property
    def link_transports(self) -> Dict[int, str]:
        """Shard id -> ``"shm"``/``"tcp"`` for every dialled peer link."""
        return dict(self._shared.link_transports)

    def peer_view(self) -> "ShardRouter":
        """The ``fanout=False`` router for this shard's peer door."""
        return ShardRouter(self.shard_id, self.nshards, fanout=False,
                           _shared=self._shared)

    def owner(self, name: str) -> int:
        """The shard owning container/binding *name*."""
        return self.ring.owner(name)

    def is_local(self, name: str) -> bool:
        """Whether this shard owns *name*."""
        return self.ring.owner(name) == self.shard_id

    def peer_client(self, shard_id: int):
        """The shared :class:`StampedeClient` link to *shard_id*."""
        return self._shared.client(shard_id, self.shard_id)

    def client_for(self, name: str):
        """The link to the shard owning *name*."""
        return self.peer_client(self.ring.owner(name))

    # -- reclaim interest ---------------------------------------------------------

    def add_reclaim_interest(self, name: str, service: Any) -> None:
        """Route *name*'s reclaim notifications to *service*."""
        self._shared.add_interest(name, service)

    def drop_reclaim_interest(self, name: str, service: Any) -> None:
        """Withdraw one forwarded connection's interest."""
        self._shared.drop_interest(name, service)

    # -- aggregate operations -----------------------------------------------------

    def merged_stats(self, local_snapshot: Dict[str, Any]
                     ) -> Dict[str, Any]:
        """Fold every shard's STATS snapshot into one logical view."""
        snaps: List[Dict[str, Any]] = []
        shard_ids: List[int] = []
        for sid in range(self.nshards):
            if sid == self.shard_id:
                snaps.append(local_snapshot)
                shard_ids.append(sid)
                continue
            try:
                snaps.append(self.peer_client(sid).stats())
                shard_ids.append(sid)
            except StampedeError:
                _log.warning("shard %d unreachable for STATS merge", sid)
        return merge_stats_snapshots(snaps, shard_ids)

    def merged_spans(self, local_payload: Dict[str, Any],
                     max_spans: int = 0,
                     clear: bool = False) -> Dict[str, Any]:
        """Fold every shard's SPAN_DUMP payload into one timeline.

        Shards share the host's monotonic clock, so re-sorting the
        combined ring by record time yields a true cluster-wide
        interleaving — the cross-shard forward on shard A and the
        container insert on shard B appear in causal order.
        """
        payloads: List[Dict[str, Any]] = [local_payload]
        labels: List[str] = [
            str(local_payload.get("label") or f"shard{self.shard_id}")]
        for sid in range(self.nshards):
            if sid == self.shard_id:
                continue
            try:
                payloads.append(self.peer_client(sid).span_dump(
                    max_spans=max_spans, clear=clear))
                labels.append(f"shard{sid}")
            except StampedeError:
                _log.warning(
                    "shard %d unreachable for SPAN_DUMP merge", sid)
        return merge_span_dumps(payloads, labels)

    def merged_profile(self, local_payload: Dict[str, Any],
                       clear: bool = False) -> Dict[str, Any]:
        """Sum every shard's collapsed-stack profile into one."""
        payloads: List[Dict[str, Any]] = [local_payload]
        for sid in range(self.nshards):
            if sid == self.shard_id:
                continue
            try:
                payloads.append(self.peer_client(sid).prof_dump(
                    clear=clear))
            except StampedeError:
                _log.warning(
                    "shard %d unreachable for PROF_DUMP merge", sid)
        merged = merge_profile_dumps(payloads)
        merged["label"] = str(local_payload.get("label") or
                              f"shard{self.shard_id}")
        return merged

    def merged_gc_report(self, local: Tuple[int, int, int]
                         ) -> Tuple[int, int, int]:
        """Sum ``(sweeps, items, bytes)`` across every shard."""
        sweeps, items, bytes_ = local
        for sid in range(self.nshards):
            if sid == self.shard_id:
                continue
            try:
                s, i, b = self.peer_client(sid).gc_report()
            except StampedeError:
                _log.warning("shard %d unreachable for GC_REPORT", sid)
                continue
            sweeps += s
            items += i
            bytes_ += b
        return sweeps, items, bytes_

    def merged_ns_list(self, local_names: List[str],
                       kind: str) -> List[str]:
        """Union of every shard's name listing."""
        names = set(local_names)
        for sid in range(self.nshards):
            if sid == self.shard_id:
                continue
            try:
                names.update(self.peer_client(sid).ns_list(kind))
            except StampedeError:
                _log.warning("shard %d unreachable for NS_LIST", sid)
        return sorted(names)

    def close(self) -> None:
        """Drop every peer link (server shutdown)."""
        self._shared.close()


class _ForwardedConnection:
    """Server-side adapter: a cross-shard container connection.

    Stored in a :class:`~repro.runtime.service.SessionService`'s
    connection table exactly like a local
    :class:`~repro.core.connection.Connection`; every method forwards
    over the owner shard's peer link.  ``container`` is ``None`` so the
    service's serialize-once fast path (``hasattr(connection.container,
    "get_item")``) falls through to the plain get — the caching happens
    once, on the owner shard, where the item actually lives.

    Blocking composes with the lane liveness discipline unchanged: the
    surrogate probes PUT/GET with ``block=False``, the probe's
    :class:`~repro.errors.ChannelFullError` /
    :class:`~repro.errors.ItemNotFoundError` is rehydrated to the real
    class by the peer link's RPC layer, the surrogate sees its usual
    would-block signal and offloads the genuinely-blocking call to a
    transient worker — where the peer link happily carries a blocking
    request alongside other traffic (the RPC channel multiplexes
    concurrent outstanding calls).
    """

    container = None  # a remote container has no local object

    def __init__(self, remote: Any, router: ShardRouter, name: str,
                 service: Any) -> None:
        self._remote = remote
        self._router = router
        self._service = service
        self.container_name = name
        self.mode = remote.mode
        self.kind = remote.kind

    def put(self, timestamp: int, value: Any, size: int = 0,
            block: bool = True, timeout: Optional[float] = None) -> None:
        # The surrogate bound this lane thread's span context from the
        # frame's origin stamp; mark the hand-off hop here, and the peer
        # link's RPC layer re-stamps the forwarded frame from the same
        # context — the owner shard's insert lands on the original
        # timeline, not a fresh one.
        entry = _spanmod.current_entry()
        if entry is not None and _spanmod.GLOBAL_SPANS.enabled:
            _spanmod.GLOBAL_SPANS.record(
                _spanmod.SHARD_FORWARD, self.container_name, entry[0])
        self._remote.put(timestamp, value, block=block, timeout=timeout)

    def get(self, timestamp: Any, block: bool = True,
            timeout: Optional[float] = None) -> Tuple[int, Any]:
        return self._remote.get(timestamp, block=block, timeout=timeout)

    def consume(self, timestamp: int) -> None:
        self._remote.consume(timestamp)

    def consume_until(self, timestamp: int) -> None:
        self._remote.consume_until(timestamp)

    def detach(self) -> None:
        """Detach on the owner shard and withdraw reclaim interest.

        Every eviction path funnels here — explicit DETACH, BYE,
        surrogate lease expiry and parked-session grace expiry all end
        in the service's ``close()``/``_take_connection``, which calls
        ``detach()`` on each held connection — so cross-shard forwarding
        state can never outlive the session that created it.
        """
        if self._remote.detached:
            return
        if self.mode.can_get:
            self._router.drop_reclaim_interest(
                self.container_name, self._service)
        try:
            self._remote.detach()
        except StampedeError:
            _log.warning("cross-shard detach of %r failed (peer gone?)",
                         self.container_name)


# -- worker processes ---------------------------------------------------------


def _worker_main(config: ShardConfig, pipe: Any) -> None:
    """Entry point of a forked shard worker.

    Builds everything fresh — runtime, reactor, lanes, listener — and
    never touches inherited parent objects (whose owning threads do not
    exist on this side of the fork).  The pipe protocol with the parent:

    1. child sends ``("ready", (peer_door_address, shm_door_path))``;
    2. parent sends ``("map", {shard_id: (peer_door_address,
       shm_door_path)})``;
    3. child opens its front door and sends ``("up", None)``;
    4. parent sends ``("stop", None)``; child tears down and sends
       ``("stopped", None)``.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent drives shutdown
    from repro.runtime.runtime import Runtime
    from repro.runtime.server import StampedeServer

    front = None
    peer_door = None
    runtime = None
    router = ShardRouter(config.shard_id, config.shards)
    try:
        runtime = Runtime(
            name=f"{config.runtime_name}-shard{config.shard_id}",
            gc_interval=config.gc_interval,
        )
        peer_door = StampedeServer(
            runtime, host=config.host, port=0,
            device_spaces=list(config.device_spaces),
            lanes=config.lanes, router=router.peer_view(),
            shm_door=True,
        ).start()
        pipe.send(("ready", (peer_door.address, peer_door.shm_address)))
        message, peers = pipe.recv()
        if message != "map":  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected shard map, got {message!r}")
        router.set_peers(peers)
        front = StampedeServer(
            runtime, host=config.host, port=config.port,
            device_spaces=list(config.device_spaces),
            lease_timeout=config.lease_timeout,
            session_grace=config.session_grace,
            lanes=config.lanes, router=router, reuse_port=True,
        ).start()
        pipe.send(("up", None))
    except Exception as exc:  # noqa: BLE001 - report, then die
        try:
            pipe.send(("error", repr(exc)))
        except OSError:
            pass
        os._exit(1)
    while True:
        try:
            message = pipe.recv()
        except (EOFError, OSError):
            break  # parent died: fall through to teardown
        if message[0] == "stop":
            break
    try:
        front.close()
        peer_door.close()
        router.close()
        runtime.shutdown()
        pipe.send(("stopped", None))
    except Exception:  # noqa: BLE001 - exiting anyway
        pass
    os._exit(0)


class _ShardCluster:
    """Parent-side manager of the forked shard workers.

    Construction reserves the front-door port (so ``port=0`` resolves
    once, race-free, before anyone listens), forks the workers — which
    MUST happen before the parent starts its own reactor/lane/peer-door
    threads, since forking a multithreaded process only preserves the
    forking thread — and collects each worker's peer-door address.
    :meth:`broadcast_map` then completes the handshake once the parent
    knows its own peer-door address.
    """

    def __init__(self, config: ShardConfig) -> None:
        reservation = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        reservation.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        reservation.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            reservation.bind((config.host, config.port))
        except OSError:
            reservation.close()
            raise
        self._reservation = reservation
        self.port: int = reservation.getsockname()[1]
        #: shard id -> (peer-door TCP address, SHM-door path or None).
        self.worker_peers: Dict[int, Any] = {}
        context = multiprocessing.get_context("fork")
        self._pipes: Dict[int, Any] = {}
        self._procs: Dict[int, Any] = {}
        try:
            for shard_id in range(1, config.shards):
                parent_end, child_end = context.Pipe()
                worker_config = replace(config, shard_id=shard_id,
                                        port=self.port)
                process = context.Process(
                    target=_worker_main,
                    args=(worker_config, child_end),
                    name=f"dstampede-shard{shard_id}", daemon=True,
                )
                process.start()
                child_end.close()
                self._pipes[shard_id] = parent_end
                self._procs[shard_id] = process
            for shard_id, pipe in self._pipes.items():
                self.worker_peers[shard_id] = self._expect(
                    shard_id, pipe, "ready")
        except Exception:
            self.close()
            raise

    @staticmethod
    def _expect(shard_id: int, pipe: Any, expected: str,
                timeout: float = 30.0) -> Any:
        if not pipe.poll(timeout):
            raise RuntimeError(
                f"shard {shard_id} did not report {expected!r} "
                f"within {timeout}s")
        message, payload = pipe.recv()
        if message == "error":
            raise RuntimeError(f"shard {shard_id} failed: {payload}")
        if message != expected:
            raise RuntimeError(
                f"shard {shard_id}: expected {expected!r}, "
                f"got {message!r}")
        return payload

    def broadcast_map(self, peers: Dict[int, Any]) -> None:
        """Ship the complete shard map; workers open their front doors."""
        for pipe in self._pipes.values():
            pipe.send(("map", peers))
        for shard_id, pipe in self._pipes.items():
            self._expect(shard_id, pipe, "up")

    def close(self) -> None:
        """Stop every worker (graceful, then SIGTERM) and release the
        port reservation."""
        for pipe in self._pipes.values():
            try:
                pipe.send(("stop", None))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 5.0
        for process in self._procs.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for pipe in self._pipes.values():
            try:
                pipe.close()
            except OSError:
                pass
        self._pipes.clear()
        self._procs.clear()
        self._reservation.close()
