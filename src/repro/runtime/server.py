"""The cluster server library.

"There is a listener thread on the cluster (part of the server library)
that listens to new end devices joining a D-Stampede computation"
(§3.2.2).  :class:`StampedeServer` is that listener plus surrogate
management: every accepted TCP connection gets a
:class:`~repro.runtime.surrogate.Surrogate` bound to an address space
chosen round-robin from the configured device spaces (the ``N_i`` of §4).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DeliveryTimeoutError,
    SessionResumeError,
    TransportClosedError,
)
from repro.runtime.runtime import Runtime
from repro.runtime.service import SessionService
from repro.runtime.surrogate import LeaseReaper, Surrogate
from repro.transport.tcp import TcpListener
from repro.util.logging import get_logger

_log = get_logger("runtime.server")


@dataclass
class _ParkedSession:
    """One disconnected-but-not-forgotten session awaiting RESUME."""

    service: SessionService
    deadline: float  # monotonic instant the grace period ends


class StampedeServer:
    """TCP front door of a cluster runtime.

    Parameters
    ----------
    runtime:
        The cluster this server exposes.
    host, port:
        Listen address (``port=0`` = ephemeral; read :attr:`address`).
    device_spaces:
        Address-space names to assign to joining devices round-robin.
        Spaces that do not exist yet are created.  Default: one space
        named ``"edge"``.
    lease_timeout:
        If set, surrogates idle longer than this many seconds are reaped
        (failure-detection extension; the paper's system had none).
    session_grace:
        If set, a session whose transport dies *without* a clean BYE is
        parked for this many seconds instead of torn down: its container
        connections stay attached (still vetoing GC) so the device can
        reconnect and RESUME with no lost attach state.  Grace expiry
        closes the session exactly as a disconnect does today.
    """

    def __init__(self, runtime: Runtime, host: str = "127.0.0.1",
                 port: int = 0,
                 device_spaces: Optional[List[str]] = None,
                 lease_timeout: Optional[float] = None,
                 session_grace: Optional[float] = None) -> None:
        if session_grace is not None and session_grace <= 0:
            raise ValueError("session_grace must be positive")
        self.runtime = runtime
        self._session_grace = session_grace
        self._parked: Dict[str, _ParkedSession] = {}
        self._spaces = device_spaces or ["edge"]
        for space in self._spaces:
            try:
                runtime.address_space(space)
            except Exception:  # noqa: BLE001 - missing space
                runtime.create_address_space(space)
        self._space_cycle = itertools.cycle(self._spaces)
        self._listener = TcpListener(host, port)
        self._address = self._listener.address
        self._surrogates: Dict[str, Surrogate] = {}
        self._surrogates_lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dstampede-listener", daemon=True
        )
        self._reaper: Optional[LeaseReaper] = None
        if lease_timeout is not None:
            self._reaper = LeaseReaper(
                self._surrogates, self._surrogates_lock, lease_timeout
            )
        self._janitor: Optional[threading.Thread] = None
        if session_grace is not None:
            self._janitor = threading.Thread(
                target=self._sweep_parked, name="session-janitor",
                daemon=True,
            )

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "StampedeServer":
        """Start accepting end devices; returns self."""
        self._accept_thread.start()
        if self._reaper is not None:
            self._reaper.start()
        if self._janitor is not None:
            self._janitor.start()
        _log.info("server listening on %s", self.address)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The listen address devices join through."""
        return self._address

    def close(self) -> None:
        """Stop accepting, reap every surrogate, keep the runtime running
        (the runtime may serve other servers or in-process threads)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._listener.close()
        if self._reaper is not None:
            self._reaper.stop()
        with self._surrogates_lock:
            surrogates = list(self._surrogates.values())
            parked = list(self._parked.values())
            self._parked.clear()
        for surrogate in surrogates:
            surrogate.close()
        for entry in parked:
            entry.service.close()
        _log.info("server on %s closed", self.address)

    def __enter__(self) -> "StampedeServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- surrogate management ---------------------------------------------------------

    def surrogates(self) -> List[Surrogate]:
        """Snapshot of the current surrogates."""
        with self._surrogates_lock:
            return list(self._surrogates.values())

    @property
    def device_count(self) -> int:
        """Number of live (unreaped) surrogates."""
        with self._surrogates_lock:
            return sum(1 for s in self._surrogates.values() if s.alive)

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                connection = self._listener.accept(timeout=0.5)
            except DeliveryTimeoutError:
                continue
            except TransportClosedError:
                break
            service = SessionService(self.runtime, next(self._space_cycle))
            surrogate = Surrogate(
                connection, service, on_close=self._forget,
                park=self._park_session,
                resume_lookup=self._resume_session,
            )
            with self._surrogates_lock:
                self._surrogates[service.session_id] = surrogate
            surrogate.start()
            _log.info("end device joined: %s assigned to space %r",
                      service.session_id, service.space)

    def _forget(self, surrogate: Surrogate) -> None:
        with self._surrogates_lock:
            self._surrogates.pop(surrogate.service.session_id, None)

    # -- session parking / resume -----------------------------------------------------

    @property
    def parked_count(self) -> int:
        """Sessions currently awaiting a RESUME."""
        with self._surrogates_lock:
            return len(self._parked)

    def _park_session(self, service: SessionService) -> bool:
        """Hold a disconnected session for the grace period (or refuse)."""
        if self._session_grace is None or self._closed.is_set():
            return False
        if not service.hello_done:
            return False  # never completed the handshake: nothing to keep
        with self._surrogates_lock:
            self._parked[service.session_id] = _ParkedSession(
                service, time.monotonic() + self._session_grace
            )
        _log.info("session %s parked for %.1fs awaiting resume",
                  service.session_id, self._session_grace)
        return True

    def _resume_session(self, surrogate: Surrogate, session_id: str,
                        token: str) -> SessionService:
        """RESUME handshake: hand the parked session to *surrogate*.

        Single-flight by construction: the entry is popped under the
        lock, so a second concurrent RESUME for the same session fails.

        A device can re-dial faster than the cluster notices its old
        connection died (the old surrogate's receive loop polls, then
        drains its executors, *then* parks).  A RESUME that arrives in
        that window waits for the park instead of failing — it runs
        inline on the new surrogate's receive loop, so briefly blocking
        it stalls nothing else.
        """
        wait_deadline = time.monotonic() + 5.0
        while True:
            with self._surrogates_lock:
                entry = self._parked.get(session_id)
                if entry is not None:
                    break
                teardown = self._surrogates.get(session_id)
            if (teardown is None or teardown is surrogate
                    or time.monotonic() >= wait_deadline):
                raise SessionResumeError(
                    f"session {session_id!r} is not resumable (unknown, "
                    "expired, or never disconnected)"
                )
            time.sleep(0.01)  # old surrogate still tearing down
        with self._surrogates_lock:
            entry = self._parked.get(session_id)
            if entry is None:
                raise SessionResumeError(
                    f"session {session_id!r} was resumed concurrently"
                )
            if entry.service.resume_token != token:
                raise SessionResumeError(
                    f"bad resume token for session {session_id!r}"
                )
            if entry.deadline <= time.monotonic():
                # Janitor hasn't swept yet, but the grace period is over:
                # honour the documented deadline.
                del self._parked[session_id]
                entry.service.close()
                raise SessionResumeError(
                    f"grace period expired for session {session_id!r}"
                )
            del self._parked[session_id]
            # Re-key the surrogate under the identity it now serves.
            self._surrogates.pop(surrogate.service.session_id, None)
            self._surrogates[session_id] = surrogate
        return entry.service

    def _sweep_parked(self) -> None:
        interval = min(0.25, self._session_grace / 4) \
            if self._session_grace else 0.25
        while not self._closed.wait(timeout=interval):
            now = time.monotonic()
            with self._surrogates_lock:
                expired = [sid for sid, entry in self._parked.items()
                           if entry.deadline <= now]
                entries = [self._parked.pop(sid) for sid in expired]
            for sid, entry in zip(expired, entries):
                _log.warning(
                    "grace period expired for parked session %s — "
                    "releasing its connections", sid,
                )
                entry.service.close()
