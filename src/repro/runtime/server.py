"""The cluster server library.

"There is a listener thread on the cluster (part of the server library)
that listens to new end devices joining a D-Stampede computation"
(§3.2.2).  :class:`StampedeServer` is that listener plus surrogate
management: every accepted TCP connection gets a
:class:`~repro.runtime.surrogate.Surrogate` bound to an address space
chosen round-robin from the configured device spaces (the ``N_i`` of §4).

The front door is event-driven: one shared
:class:`~repro.runtime.reactor.Reactor` thread multiplexes the listening
socket and every device socket, and the lease sweep and parked-session
sweep run as timers on the same loop.  Request execution is bounded too:
a shared :class:`~repro.runtime.lanes.LanePool` runs every surrogate's
container traffic on a fixed number of lane threads (connections are
affinity-mapped to lanes; per-connection FIFO order is preserved), so
total server-side thread count is one I/O thread plus O(lanes) — not
O(connected devices) — and an idle server performs O(1) wakeups per
second regardless of how many devices are connected.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SessionResumeError
from repro.runtime.lanes import LanePool
from repro.runtime.reactor import Reactor
from repro.runtime.runtime import Runtime
from repro.runtime.service import SessionService
from repro.runtime.surrogate import Surrogate
from repro.transport.tcp import TcpConnection, TcpListener
from repro.util.logging import get_logger

_log = get_logger("runtime.server")


@dataclass
class _ParkedSession:
    """One disconnected-but-not-forgotten session awaiting RESUME."""

    service: SessionService
    deadline: float  # monotonic instant the grace period ends


class StampedeServer:
    """TCP front door of a cluster runtime.

    Parameters
    ----------
    runtime:
        The cluster this server exposes.
    host, port:
        Listen address (``port=0`` = ephemeral; read :attr:`address`).
    device_spaces:
        Address-space names to assign to joining devices round-robin.
        Spaces that do not exist yet are created.  Default: one space
        named ``"edge"``.
    lease_timeout:
        If set, surrogates idle longer than this many seconds are reaped
        (failure-detection extension; the paper's system had none).
    session_grace:
        If set, a session whose transport dies *without* a clean BYE is
        parked for this many seconds instead of torn down: its container
        connections stay attached (still vetoing GC) so the device can
        reconnect and RESUME with no lost attach state.  Grace expiry
        closes the session exactly as a disconnect does today.
    lanes:
        Number of lane threads executing container operations for all
        connected devices.  Default: the ``DSTAMPEDE_LANES`` environment
        variable, else ``min(32, 4 × cpu_count)``.  Requests from one
        connection always run in arrival order regardless of the lane
        count; ``lanes=1`` serialises the whole server (useful as an
        ordering oracle in tests).
    shards:
        Number of worker **processes** sharing the front door (the
        Octopus body; see :mod:`repro.runtime.shards`).  Default: the
        ``DSTAMPEDE_SHARDS`` environment variable, else 1.  With
        ``shards=N > 1`` this server forks N-1 workers, each owning a
        consistent-hash slice of the container names and listening on
        the *same* port via ``SO_REUSEPORT``; this instance is shard 0.
        ``shards=1`` builds none of that machinery and is byte-for-byte
        the single-process server (the CI oracle, mirroring
        ``lanes=1``).  Lanes scale threads inside one GIL; shards scale
        processes across cores.
    reuse_port:
        Bind the listener with ``SO_REUSEPORT`` (shard workers set
        this; there is no reason to outside the sharding machinery).
    router:
        Internal — the :class:`~repro.runtime.shards.ShardRouter` of a
        cluster member.  A server given a router is one member of an
        existing shard cluster and never forks.
    shm_door:
        Internal — open a shared-memory rendezvous door
        (:class:`~repro.transport.shm.ShmListener`) next to the TCP
        listener.  Peer doors of a shard cluster set this so co-host
        peer links can ride SHM rings instead of loopback TCP; the
        door's path travels in the shard map (never the SHARD_MAP wire
        op).  No-op when ``DSTAMPEDE_SHM=0``.  A ``shards=1`` server
        never sets it — the single-process path builds no SHM
        machinery.
    """

    def __init__(self, runtime: Runtime, host: str = "127.0.0.1",
                 port: int = 0,
                 device_spaces: Optional[List[str]] = None,
                 lease_timeout: Optional[float] = None,
                 session_grace: Optional[float] = None,
                 lanes: Optional[int] = None,
                 shards: Optional[int] = None,
                 reuse_port: bool = False,
                 router: Optional[object] = None,
                 shm_door: bool = False) -> None:
        if session_grace is not None and session_grace <= 0:
            raise ValueError("session_grace must be positive")
        if lease_timeout is not None and lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.runtime = runtime
        self._lease_timeout = lease_timeout
        self._session_grace = session_grace
        self._parked: Dict[str, _ParkedSession] = {}
        self._spaces = device_spaces or ["edge"]
        for space in self._spaces:
            try:
                runtime.address_space(space)
            except Exception:  # noqa: BLE001 - missing space
                runtime.create_address_space(space)
        self._space_cycle = itertools.cycle(self._spaces)
        self._router = router
        self._cluster = None
        self._peer_door: Optional["StampedeServer"] = None
        if router is not None:
            # A cluster member (worker front door or a peer door): the
            # forking was done by whoever built the router.
            self.shards = 1
        else:
            from repro.runtime.shards import resolve_shards

            self.shards = resolve_shards(shards)
        if router is None and self.shards > 1:
            port, reuse_port = self._start_shard_cluster(
                host, port, lanes)
        self._listener = TcpListener(host, port, reuse_port=reuse_port)
        self._address = self._listener.address
        self._shm_listener = None
        if shm_door:
            from repro.transport.shm import ShmListener, shm_enabled

            if shm_enabled():
                try:
                    self._shm_listener = ShmListener()
                except OSError as exc:  # pragma: no cover - exotic hosts
                    _log.warning(
                        "SHM door unavailable (%s); peer links will "
                        "use TCP", exc)
        self._surrogates: Dict[str, Surrogate] = {}
        self._surrogates_lock = threading.Lock()
        self._closed = threading.Event()
        self._reactor = Reactor(name="dstampede-reactor")
        self._lane_pool = LanePool(lanes)
        self._lane_pool.register_gauges()

    def _start_shard_cluster(self, host: str, port: int,
                             lanes: Optional[int]) -> Tuple[int, bool]:
        """Fork the worker shards and become shard 0.

        Order matters: the front-door port is reserved first (so
        ``port=0`` resolves exactly once), the workers fork **before**
        this process starts any reactor/lane threads (forking a
        multithreaded process keeps only the forking thread alive in
        the child), and only then does shard 0 open its own peer door
        and broadcast the complete shard map.  Returns the resolved
        port and the ``reuse_port`` flag for this instance's listener.
        """
        from repro.runtime.shards import (
            ShardConfig,
            ShardRouter,
            _ShardCluster,
        )

        self._router = ShardRouter(0, self.shards)
        config = ShardConfig(
            shard_id=0, shards=self.shards, host=host, port=port,
            device_spaces=tuple(self._spaces),
            lease_timeout=self._lease_timeout,
            session_grace=self._session_grace, lanes=lanes,
            gc_interval=getattr(self.runtime, "_gc_interval", 0.05),
            runtime_name=self.runtime.name,
        )
        self._cluster = _ShardCluster(config)
        try:
            self._peer_door = StampedeServer(
                self.runtime, host=host, port=0,
                device_spaces=list(self._spaces), lanes=lanes,
                router=self._router.peer_view(), shm_door=True,
            ).start()
            peers = dict(self._cluster.worker_peers)
            peers[0] = (self._peer_door.address,
                        self._peer_door.shm_address)
            self._router.set_peers(peers)
            self._cluster.broadcast_map(peers)
        except Exception:
            if self._peer_door is not None:
                self._peer_door.close()
            self._cluster.close()
            raise
        _log.info("shard cluster up: %d shards on port %d",
                  self.shards, self._cluster.port)
        return self._cluster.port, True

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "StampedeServer":
        """Start accepting end devices; returns self."""
        self._reactor.start()
        self._listener.raw_socket.setblocking(False)
        self._reactor.add_reader(self._listener.raw_socket,
                                 self._on_accept)
        if self._shm_listener is not None:
            self._reactor.add_reader(self._shm_listener,
                                     self._on_shm_accept)
        if self._lease_timeout is not None:
            self._reactor.call_every(self._lease_timeout / 4,
                                     self._sweep_leases)
        if self._session_grace is not None:
            self._reactor.call_every(min(0.25, self._session_grace / 4),
                                     self._sweep_parked)
        _log.info("server listening on %s", self.address)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The listen address devices join through."""
        return self._address

    @property
    def shm_address(self) -> Optional[str]:
        """The SHM door's rendezvous path (None without a door)."""
        if self._shm_listener is None:
            return None
        return self._shm_listener.address

    @property
    def reactor(self) -> Reactor:
        """The server's event loop (benchmarks read its wakeup count)."""
        return self._reactor

    @property
    def lane_pool(self) -> LanePool:
        """The shared execution pool (tests/benchmarks read its size and
        started-thread count)."""
        return self._lane_pool

    def close(self) -> None:
        """Stop accepting, reap every surrogate, keep the runtime running
        (the runtime may serve other servers or in-process threads).

        Joins the reactor thread — which subsumes the old accept thread,
        lease reaper, and parked-session janitor — so tests cannot leak
        threads across cases.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._reactor.remove_reader(self._listener.raw_socket)
        self._listener.close()
        if self._shm_listener is not None:
            self._reactor.remove_reader(self._shm_listener)
            self._shm_listener.close()
        self._reactor.stop(join=True)
        with self._surrogates_lock:
            surrogates = list(self._surrogates.values())
            parked = list(self._parked.values())
            self._parked.clear()
        for surrogate in surrogates:
            surrogate.close()
        for entry in parked:
            entry.service.close()
        self._lane_pool.close()
        if self._cluster is not None:
            # Workers quiesce first: their in-flight cross-shard
            # forwards may still need shard 0's peer door and router.
            self._cluster.close()
            if self._peer_door is not None:
                self._peer_door.close()
            self._router.close()
        _log.info("server on %s closed", self.address)

    def __enter__(self) -> "StampedeServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- surrogate management ---------------------------------------------------------

    def surrogates(self) -> List[Surrogate]:
        """Snapshot of the current surrogates."""
        with self._surrogates_lock:
            return list(self._surrogates.values())

    @property
    def device_count(self) -> int:
        """Number of live (unreaped) surrogates."""
        with self._surrogates_lock:
            return sum(1 for s in self._surrogates.values() if s.alive)

    def _on_accept(self) -> None:
        """Reactor callback: admit every connection the kernel has queued."""
        while not self._closed.is_set():
            try:
                sock, _addr = self._listener.raw_socket.accept()
            except (BlockingIOError, InterruptedError):
                return  # queue drained
            except OSError:
                return  # listener closed under us
            # Accepted sockets must not inherit the listener's
            # non-blocking flag (platform-dependent): the surrogate
            # manages its own blocking mode.
            sock.setblocking(True)
            self._admit(TcpConnection(sock))

    def _on_shm_accept(self) -> None:
        """Reactor callback: complete queued SHM-door handshakes.

        The accepted connection is admitted through the ordinary
        :meth:`_admit`, so the surrogate serving an SHM peer link is
        byte-for-byte the one serving a TCP device — the rings are
        invisible above the framing layer.
        """
        from repro.errors import TransportError

        while not self._closed.is_set():
            try:
                connection = self._shm_listener.accept_pending()
            except TransportError as exc:
                _log.warning("SHM handshake failed: %s", exc)
                continue
            if connection is None:
                return  # queue drained
            self._admit(connection)

    def _admit(self, connection) -> None:
        service = SessionService(self.runtime, next(self._space_cycle),
                                 router=self._router)
        surrogate = Surrogate(
            connection, service, on_close=self._forget,
            park=self._park_session,
            resume_lookup=self._resume_session,
            reactor=self._reactor,
            lane_pool=self._lane_pool,
        )
        with self._surrogates_lock:
            self._surrogates[service.session_id] = surrogate
        surrogate.start()
        _log.info("end device joined: %s assigned to space %r",
                  service.session_id, service.space)

    def _forget(self, surrogate: Surrogate) -> None:
        with self._surrogates_lock:
            self._surrogates.pop(surrogate.service.session_id, None)

    def _sweep_leases(self) -> None:
        """Timer callback: reap surrogates idle past their lease.

        Runs on the reactor; the closes themselves (which drain lane
        queues) happen on a short-lived worker so the loop never blocks.
        """
        with self._surrogates_lock:
            expired = [
                s for s in self._surrogates.values()
                if s.alive and s.idle_seconds > self._lease_timeout
            ]
        if not expired:
            return

        def _reap() -> None:
            for surrogate in expired:
                _log.warning(
                    "lease expired for %s (idle %.1fs) — reaping",
                    surrogate.service.session_id, surrogate.idle_seconds,
                )
                surrogate.close()

        threading.Thread(target=_reap, name="lease-reap",
                         daemon=True).start()

    # -- session parking / resume -----------------------------------------------------

    @property
    def parked_count(self) -> int:
        """Sessions currently awaiting a RESUME."""
        with self._surrogates_lock:
            return len(self._parked)

    def _park_session(self, service: SessionService) -> bool:
        """Hold a disconnected session for the grace period (or refuse)."""
        if self._session_grace is None or self._closed.is_set():
            return False
        if not service.hello_done:
            return False  # never completed the handshake: nothing to keep
        with self._surrogates_lock:
            self._parked[service.session_id] = _ParkedSession(
                service, time.monotonic() + self._session_grace
            )
        _log.info("session %s parked for %.1fs awaiting resume",
                  service.session_id, self._session_grace)
        return True

    def _resume_session(self, surrogate: Surrogate, session_id: str,
                        token: str) -> SessionService:
        """RESUME handshake: hand the parked session to *surrogate*.

        Single-flight by construction: the entry is popped under the
        lock, so a second concurrent RESUME for the same session fails.

        A device can re-dial faster than the cluster notices its old
        connection died (the old surrogate tears down, drains its
        lane queues, *then* parks).  A RESUME that arrives in that window
        waits for the park instead of failing — it runs on the new
        surrogate's lifecycle worker with that connection's reads
        paused, so briefly blocking it stalls nothing else.
        """
        wait_deadline = time.monotonic() + 5.0
        while True:
            with self._surrogates_lock:
                entry = self._parked.get(session_id)
                if entry is not None:
                    break
                teardown = self._surrogates.get(session_id)
            if (teardown is None or teardown is surrogate
                    or time.monotonic() >= wait_deadline):
                raise SessionResumeError(
                    f"session {session_id!r} is not resumable (unknown, "
                    "expired, or never disconnected)"
                )
            time.sleep(0.01)  # old surrogate still tearing down
        with self._surrogates_lock:
            entry = self._parked.get(session_id)
            if entry is None:
                raise SessionResumeError(
                    f"session {session_id!r} was resumed concurrently"
                )
            if entry.service.resume_token != token:
                raise SessionResumeError(
                    f"bad resume token for session {session_id!r}"
                )
            if entry.deadline <= time.monotonic():
                # Sweep hasn't fired yet, but the grace period is over:
                # honour the documented deadline.
                del self._parked[session_id]
                entry.service.close()
                raise SessionResumeError(
                    f"grace period expired for session {session_id!r}"
                )
            del self._parked[session_id]
            # Re-key the surrogate under the identity it now serves.
            self._surrogates.pop(surrogate.service.session_id, None)
            self._surrogates[session_id] = surrogate
        return entry.service

    def _sweep_parked(self) -> None:
        """Timer callback: release parked sessions whose grace expired."""
        now = time.monotonic()
        with self._surrogates_lock:
            expired = [sid for sid, entry in self._parked.items()
                       if entry.deadline <= now]
            entries = [self._parked.pop(sid) for sid in expired]
        if not entries:
            return

        def _release() -> None:
            for sid, entry in zip(expired, entries):
                _log.warning(
                    "grace period expired for parked session %s — "
                    "releasing its connections", sid,
                )
                entry.service.close()

        threading.Thread(target=_release, name="park-expiry",
                         daemon=True).start()
