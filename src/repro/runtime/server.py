"""The cluster server library.

"There is a listener thread on the cluster (part of the server library)
that listens to new end devices joining a D-Stampede computation"
(§3.2.2).  :class:`StampedeServer` is that listener plus surrogate
management: every accepted TCP connection gets a
:class:`~repro.runtime.surrogate.Surrogate` bound to an address space
chosen round-robin from the configured device spaces (the ``N_i`` of §4).
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import DeliveryTimeoutError, TransportClosedError
from repro.runtime.runtime import Runtime
from repro.runtime.service import SessionService
from repro.runtime.surrogate import LeaseReaper, Surrogate
from repro.transport.tcp import TcpListener
from repro.util.logging import get_logger

_log = get_logger("runtime.server")


class StampedeServer:
    """TCP front door of a cluster runtime.

    Parameters
    ----------
    runtime:
        The cluster this server exposes.
    host, port:
        Listen address (``port=0`` = ephemeral; read :attr:`address`).
    device_spaces:
        Address-space names to assign to joining devices round-robin.
        Spaces that do not exist yet are created.  Default: one space
        named ``"edge"``.
    lease_timeout:
        If set, surrogates idle longer than this many seconds are reaped
        (failure-detection extension; the paper's system had none).
    """

    def __init__(self, runtime: Runtime, host: str = "127.0.0.1",
                 port: int = 0,
                 device_spaces: Optional[List[str]] = None,
                 lease_timeout: Optional[float] = None) -> None:
        self.runtime = runtime
        self._spaces = device_spaces or ["edge"]
        for space in self._spaces:
            try:
                runtime.address_space(space)
            except Exception:  # noqa: BLE001 - missing space
                runtime.create_address_space(space)
        self._space_cycle = itertools.cycle(self._spaces)
        self._listener = TcpListener(host, port)
        self._address = self._listener.address
        self._surrogates: Dict[str, Surrogate] = {}
        self._surrogates_lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dstampede-listener", daemon=True
        )
        self._reaper: Optional[LeaseReaper] = None
        if lease_timeout is not None:
            self._reaper = LeaseReaper(
                self._surrogates, self._surrogates_lock, lease_timeout
            )

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "StampedeServer":
        """Start accepting end devices; returns self."""
        self._accept_thread.start()
        if self._reaper is not None:
            self._reaper.start()
        _log.info("server listening on %s", self.address)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The listen address devices join through."""
        return self._address

    def close(self) -> None:
        """Stop accepting, reap every surrogate, keep the runtime running
        (the runtime may serve other servers or in-process threads)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._listener.close()
        if self._reaper is not None:
            self._reaper.stop()
        with self._surrogates_lock:
            surrogates = list(self._surrogates.values())
        for surrogate in surrogates:
            surrogate.close()
        _log.info("server on %s closed", self.address)

    def __enter__(self) -> "StampedeServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- surrogate management ---------------------------------------------------------

    def surrogates(self) -> List[Surrogate]:
        """Snapshot of the current surrogates."""
        with self._surrogates_lock:
            return list(self._surrogates.values())

    @property
    def device_count(self) -> int:
        """Number of live (unreaped) surrogates."""
        with self._surrogates_lock:
            return sum(1 for s in self._surrogates.values() if s.alive)

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                connection = self._listener.accept(timeout=0.5)
            except DeliveryTimeoutError:
                continue
            except TransportClosedError:
                break
            service = SessionService(self.runtime, next(self._space_cycle))
            surrogate = Surrogate(
                connection, service, on_close=self._forget
            )
            with self._surrogates_lock:
                self._surrogates[service.session_id] = surrogate
            surrogate.start()
            _log.info("end device joined: %s assigned to space %r",
                      service.session_id, service.space)

    def _forget(self, surrogate: Surrogate) -> None:
        with self._surrogates_lock:
            self._surrogates.pop(surrogate.service.session_id, None)
