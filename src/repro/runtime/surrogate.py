"""Surrogates: the cluster-side representatives of end devices.

"Upon joining, a specific surrogate thread is created on the cluster on
behalf of the new end device.  All subsequent D-Stampede calls from this
end device are fielded and carried out by this specific surrogate thread"
(§3.2.2).

A :class:`Surrogate` owns one framed stream connection — a device's
TCP socket, or the SHM ring pair of a co-host peer link
(:mod:`repro.transport.shm`); the framing layer hides which — and one
:class:`~repro.runtime.service.SessionService`.  Requests on a container
connection are executed on that connection's
:class:`~repro.runtime.lanes.LaneClient` — a FIFO sub-queue of the
server's bounded :class:`~repro.runtime.lanes.LanePool` — so a blocking
``get`` from the device's display thread never stalls the puts of its
producer thread (both share the device's single connection), while the
server's thread count stays O(lanes) instead of O(connections).

Two receive modes exist:

* **thread mode** (``reactor=None``) — the seed design: a dedicated
  receive thread polls the connection with a 0.5s timeout.  Kept for
  direct embedding and unit tests.
* **reactor mode** — the production path: the server's shared
  :class:`~repro.runtime.reactor.Reactor` watches every device socket
  and calls :meth:`_on_readable`, which does a non-blocking buffered
  frame decode.  No per-device thread, no idle polls; dispatch and
  ordering semantics are identical because routing is shared.

Beyond the paper (which lists failure handling as an open limitation), a
surrogate carries a **lease**: the server can reap surrogates whose
device has been silent too long, instead of leaving them "in an
indeterminate state".
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import (
    ChannelFullError,
    ItemNotFoundError,
    StampedeError,
    TransportClosedError,
)
from repro.obs.metrics import COUNT_BOUNDS, GLOBAL_METRICS as _metrics
from repro.obs import spans as _spanmod
from repro.runtime import lanes, ops
from repro.runtime.reactor import Reactor
from repro.runtime.service import SessionService
from repro.transport.base import StreamTransport
from repro.transport.message import FrameReader
from repro.util import trace as tracepoints
from repro.util.logging import get_logger
from repro.util.trace import trace

_log = get_logger("runtime.surrogate")

# Server-side RPC instruments.  Per-op latency histograms are created
# lazily on first use (one per opcode actually seen); the batch pair
# measures how full the client coalescer's envelopes arrive — the fill
# factor that decides whether batching is earning its latency cost.
_OP_HISTS: Dict[int, object] = {}
_BATCHES = _metrics.counter("rpc.server.batches")
_BATCH_ITEMS = _metrics.histogram(
    "rpc.server.batch_items", bounds=COUNT_BOUNDS, unit="items")


def _op_hist(opcode: int):
    hist = _OP_HISTS.get(opcode)
    if hist is None:
        schema = ops.OP_SCHEMAS.get(opcode)
        name = schema.name if schema is not None else f"op{opcode}"
        # Racing creators both get the registry's single instance.
        hist = _metrics.histogram(f"rpc.server.{name}_us")
        _OP_HISTS[opcode] = hist
    return hist


#: Container ops that can wait (a consumer's get, a bounded put).  On a
#: shared lane they are probed non-blockingly first; a genuine wait is
#: moved off the lane (see :meth:`Surrogate._execute`).
_BLOCKING_OPS = frozenset({ops.OP_PUT, ops.OP_GET})
#: What a non-blocking probe raises when the op would have waited.
_WOULD_BLOCK = (ChannelFullError, ItemNotFoundError)


class _Offloaded(Exception):
    """Internal: the op moved to a dedicated worker; no response yet."""


#: Return marker of :meth:`Surrogate._handle` for the offloaded case.
_OFFLOADED = object()


class Surrogate:
    """The cluster-side agent of one end device.

    Parameters
    ----------
    connection, service, on_close:
        As before: the device's transport, its session state, and the
        server's bookkeeping callback.
    park:
        Optional ``park(service) -> bool``.  When the transport dies
        *without* a clean BYE, the surrogate offers its session here
        instead of closing it; True means the server parked it for a
        grace period so a reconnecting device can RESUME it.
    resume_lookup:
        Optional ``resume_lookup(surrogate, session_id, token) ->
        SessionService``.  Serves the RESUME wire op: returns the parked
        session to adopt or raises
        :class:`~repro.errors.SessionResumeError`.
    reactor:
        Optional shared event loop.  When given, this surrogate has no
        receive thread: the reactor drives :meth:`_on_readable`.
    lane_pool:
        Optional shared :class:`~repro.runtime.lanes.LanePool` for
        container-op execution.  The server passes its pool so every
        surrogate shares the same bounded lane set; a standalone
        (embedded / unit-test) surrogate lazily creates a private pool.
    """

    #: Frames drained per readability callback before yielding the loop
    #: back to other connections (fairness under a flooding device).
    _RX_BURST = 64

    def __init__(self, connection: StreamTransport, service: SessionService,
                 on_close: Optional[Callable[["Surrogate"], None]] = None,
                 park: Optional[Callable[[SessionService], bool]] = None,
                 resume_lookup: Optional[
                     Callable[["Surrogate", str, str], SessionService]
                 ] = None,
                 reactor: Optional[Reactor] = None,
                 lane_pool: Optional[lanes.LanePool] = None) -> None:
        self.connection = connection
        self.service = service
        self._on_close = on_close
        self._park = park
        self._resume_lookup = resume_lookup
        self._reactor = reactor
        self._closed = threading.Event()
        self._lane_pool = lane_pool
        self._own_pool: Optional[lanes.LanePool] = None
        self._lanes: Dict[int, lanes.LaneClient] = {}
        self._lanes_lock = threading.Lock()
        self.last_activity = time.monotonic()
        self.requests_served = 0
        self._name = f"surrogate-{service.session_id}"
        self._reader: Optional[FrameReader] = None
        self._rx_paused = False
        self._teardown_started = False
        self._thread: Optional[threading.Thread] = None
        if reactor is None:
            self._thread = threading.Thread(
                target=self._serve, name=self._name, daemon=True,
            )

    def start(self) -> "Surrogate":
        """Begin serving the device; returns self."""
        trace(tracepoints.JOIN, self.service.session_id,
              client=self.service.client_name, space=self.service.space)
        if self._reactor is not None:
            self.connection.setblocking(False)
            self._reader = FrameReader()
            # A locally-closed socket vanishes from the selector without
            # an event; the hook turns any local close (lease reap,
            # test-driven sever, server shutdown) into a teardown.
            self.connection.on_close(self._on_transport_closed)
            self._reactor.add_reader(
                self.connection.raw_socket, self._on_readable
            )
        else:
            assert self._thread is not None
            self._thread.start()
        return self

    @property
    def alive(self) -> bool:
        """False once the surrogate has been closed."""
        return not self._closed.is_set()

    @property
    def idle_seconds(self) -> float:
        """Seconds since the device's last request (lease age)."""
        return time.monotonic() - self.last_activity

    # -- serving ------------------------------------------------------------------

    def _serve(self) -> None:
        """Thread-mode receive loop (``reactor=None`` only)."""
        try:
            while not self._closed.is_set():
                try:
                    frame = self.connection.recv_frame(timeout=0.5)
                except TransportClosedError:
                    break
                except StampedeError:
                    continue  # recv timeout: poll the closed flag
                self.last_activity = time.monotonic()
                self._dispatch(frame)
        finally:
            # The transport died (or close() was called): a session that
            # never said BYE may be parked for resume.
            self.close(park=True)

    def _on_readable(self) -> None:
        """Reactor-mode receive: drain buffered frames without blocking.

        Runs on the reactor thread.  Anything that could block — the
        container ops themselves, RESUME, BYE, teardown — is handed to
        worker threads by :meth:`_route`; this method only decodes and
        routes.
        """
        assert self._reader is not None
        try:
            for _ in range(self._RX_BURST):
                if self._closed.is_set() or self._rx_paused:
                    return
                frame = self._reader.read(self.connection.raw_socket)
                if frame is None:
                    return  # kernel buffer dry: wait for the next event
                self.last_activity = time.monotonic()
                self._dispatch(frame)
        except Exception as exc:  # noqa: BLE001 - any rx failure ends it
            if not isinstance(exc, TransportClosedError):
                _log.warning("surrogate %s: receive failed: %r",
                             self.service.session_id, exc)
            self._teardown_async()

    def _dispatch(self, frame: bytes) -> None:
        """Decode one request frame and route it (see :meth:`_route`).

        Payload fields are decoded as zero-copy ``memoryview`` slices of
        *frame*: the frame buffer is freshly allocated per frame and
        never reused, so the views stay valid for as long as anything
        (e.g. a channel item) references them.
        """
        try:
            request_id, opcode, args = ops.decode_request(
                frame, payload_views=True
            )
        except Exception as exc:  # noqa: BLE001 - hostile frame
            try:
                request_id = ops.peek_request_id(frame)
            except Exception:  # noqa: BLE001 - not even an envelope
                request_id = ops.CAST_REQUEST_ID
            if request_id != ops.CAST_REQUEST_ID:
                self._send(ops.encode_error_response(
                    request_id, type(exc).__name__, str(exc),
                    reclaims=self.service.drain_reclaims(),
                ))
            return
        if opcode in ops.BATCH_OPS:
            self._dispatch_batch(request_id, opcode, args["frames"])
            return
        self._route(request_id, opcode, args)

    def _dispatch_batch(self, request_id: int, batch_opcode: int,
                        frames) -> None:
        """Unpack a batch envelope and route each inner cast normally.

        Each subframe is a complete, individually-encoded cast request;
        routing it through :meth:`_route` sends it to the same lane
        client a lone frame would reach, so per-connection ordering
        and dedup semantics are exactly those of unbatched traffic.
        """
        if request_id != ops.CAST_REQUEST_ID:
            # A synchronous batch has no meaningful single reply; the
            # client never sends one.
            self._send(ops.encode_error_response(
                request_id, "RpcError", "batch envelopes must be casts",
                reclaims=self.service.drain_reclaims(),
            ))
            return
        if _metrics.enabled:
            _BATCHES.value += 1
            _BATCH_ITEMS.observe(len(frames))
        allowed = ops.BATCH_INNER_OPS[batch_opcode]
        # Consecutive items bound for the same connection are handed to
        # its lane client as ONE chunk: order within the run is kept
        # by the client's FIFO, and the per-item queue/wakeup handoff
        # (two context switches per cast on a busy box) is paid once per
        # run instead of once per item.  Items for different connections
        # already had no mutual ordering guarantee unbatched (parallel
        # lanes), so run boundaries lose nothing.
        run: list = []
        run_connection: Optional[int] = None
        for subframe in frames:
            try:
                sub_id, sub_op, sub_args = ops.decode_request(
                    subframe, payload_views=True
                )
                if sub_id != ops.CAST_REQUEST_ID:
                    raise ops.RpcError("batched frames must be casts")
                if sub_op not in allowed:
                    raise ops.RpcError(
                        f"opcode {sub_op} not allowed in "
                        f"{ops.OP_SCHEMAS[batch_opcode].name}"
                    )
            except Exception as exc:  # noqa: BLE001 - skip bad item
                _log.warning("batched cast from %s rejected: %r",
                             self.service.session_id, exc)
                continue
            connection_id = sub_args.get("connection_id")
            if connection_id is not None \
                    and self.service.has_connection(connection_id):
                if run and connection_id != run_connection:
                    self._lane_client(run_connection).submit_many(run)
                    run = []
                run_connection = connection_id
                run.append((sub_id, sub_op, sub_args))
            else:
                if run:
                    self._lane_client(run_connection).submit_many(run)
                    run = []
                self._route(sub_id, sub_op, sub_args)
        if run:
            self._lane_client(run_connection).submit_many(run)

    def _route(self, request_id: int, opcode: int, args) -> None:
        """Pick the execution context for one decoded request.

        * Operations on a container connection (put/get/consume/...)
          run on that connection's **lane client**: a lazily-bound FIFO
          sub-queue of the bounded lane pool that preserves issue order
          even when an operation blocks — without it, a blocked put
          racing later puts (possible with fire-and-forget streaming)
          could fill a bounded channel out of order and deadlock an
          in-order consumer.  Different connections execute in parallel
          across lanes, so a display thread's blocking get never stalls
          its device's producer.
        * ``attach`` with ``wait`` may block on the name server: its own
          worker thread.
        * In reactor mode, RESUME and BYE (which join or sleep) run on a
          lifecycle worker with this connection's reads paused, keeping
          the thread-mode ordering guarantee that nothing else of this
          device dispatches until they finish.
        * Everything else (HELLO, PING, NS ops, INSPECT...) is fast and
          runs inline on the receive context.
        """
        if opcode in ops.OBSERVER_OPS:
            # Diagnostics must answer even when every lane is wedged
            # behind a blocking container op — that is precisely the
            # situation being diagnosed.  A fresh daemon thread per
            # observer request keeps STATS/TRACE_DUMP off both the
            # reactor loop and the (possibly stalled) lanes; the ops
            # only read snapshots, so ordering does not matter.
            threading.Thread(
                target=self._handle, args=(request_id, opcode, args),
                name=f"{self._name}-observer", daemon=True,
            ).start()
            return
        connection_id = args.get("connection_id")
        if connection_id is not None:
            if not self.service.has_connection(connection_id):
                # Unknown/detached id: answer inline with the usual
                # RpcError instead of minting lane-client state —
                # otherwise a hostile client could grow the lane table
                # with one entry per random id.
                self._handle(request_id, opcode, args)
                return
            self._lane_client(connection_id).submit(
                (request_id, opcode, args)
            )
            return
        if opcode == ops.OP_ATTACH and args.get("wait"):
            worker = threading.Thread(
                target=self._handle, args=(request_id, opcode, args),
                name=f"{self._name}-attach", daemon=True,
            )
            worker.start()
            return
        if self._reactor is not None and \
                opcode in (ops.OP_RESUME, ops.OP_BYE):
            self._offload_paused(request_id, opcode, args)
            return
        self._handle(request_id, opcode, args)

    def _offload_paused(self, request_id: int, opcode: int,
                        args) -> None:
        """Run a session-lifecycle op off the reactor loop with this
        connection's reads paused until it completes."""
        reactor = self._reactor
        assert reactor is not None
        sock = self.connection.raw_socket
        self._rx_paused = True
        reactor.remove_reader(sock)

        def _work() -> None:
            try:
                self._handle(request_id, opcode, args)
            finally:
                if not self._closed.is_set() \
                        and not self._teardown_started:
                    self._rx_paused = False
                    reactor.add_reader(sock, self._on_readable)

        threading.Thread(target=_work, name=f"{self._name}-lifecycle",
                         daemon=True).start()

    def _lane_client(self, connection_id: int) -> lanes.LaneClient:
        with self._lanes_lock:
            client = self._lanes.get(connection_id)
            if client is None:
                pool = self._lane_pool
                if pool is None:
                    # Standalone embedding (reactor-less unit tests, no
                    # server): a lazily-created private pool with the
                    # same default sizing.  Lane threads start lazily,
                    # so the pool costs only the lanes actually used.
                    pool = self._own_pool
                    if pool is None:
                        pool = self._own_pool = lanes.LanePool(
                            name=f"{self._name}-lane")
                client = pool.client(
                    self._run_request,
                    name=f"{self._name}-conn{connection_id}",
                )
                self._lanes[connection_id] = client
            return client

    def _run_request(self, request) -> object:
        """Lane-client runner: execute one queued request tuple.

        Translates the surrogate's offload marker into the pool's STOP
        protocol: the in-flight op moved to a dedicated thread with this
        client suspended, so the lane must not run the connection's
        later tasks yet.
        """
        request_id, opcode, args = request
        if self._handle(request_id, opcode, args) is _OFFLOADED:
            return lanes.STOP
        return None

    def _evict_lane(self, connection_id: Optional[int]) -> None:
        """Drop a departed connection's lane bookkeeping immediately
        (clean detach), instead of retaining it until close()."""
        if connection_id is None:
            return
        with self._lanes_lock:
            client = self._lanes.pop(connection_id, None)
        if client is not None:
            client.evict()

    def _handle(self, request_id: int, opcode: int, args) -> object:
        """Execute one request: trace-context + timing around the work.

        A trace id the client attached to the frame becomes this
        thread's trace context for the duration, so every event the
        operation records — the surrogate's own routing event, the
        container's PUT/GET, eventually the GC's RECLAIM of the item it
        stamped — carries the client's id and joins its timeline.

        Returns ``_OFFLOADED`` when the op moved to a dedicated blocking
        worker (the lane runner translates that into STOP), else None.
        """
        trace_id = args.pop(ops.TRACE_ID_KEY, None)
        origin = args.pop(ops.ORIGIN_KEY, 0.0)
        if origin and _spanmod.GLOBAL_SPANS.enabled:
            return self._handle_stamped(
                request_id, opcode, args, trace_id, origin)
        t0 = time.monotonic() if _metrics.enabled else 0.0
        if trace_id is None:
            outcome = self._handle_inner(request_id, opcode, args)
        else:
            prior = tracepoints.set_trace_id(trace_id)
            try:
                if tracepoints.GLOBAL_TRACER.enabled:
                    schema = ops.OP_SCHEMAS.get(opcode)
                    trace(tracepoints.RPC, self.service.session_id,
                          op=schema.name if schema else opcode,
                          side="server")
                outcome = self._handle_inner(request_id, opcode, args)
            finally:
                tracepoints.set_trace_id(prior)
        if t0:
            _op_hist(opcode).observe((time.monotonic() - t0) * 1e6)
        return outcome

    def _handle_stamped(self, request_id: int, opcode: int, args,
                        trace_id, origin: float) -> object:
        """Handle a request carrying a provenance origin stamp.

        Records the LANE_DEQUEUE hop (the origin→here offset is exactly
        the time the frame spent in flight plus queued on its lane) and
        binds the (origin, subject) span context so downstream hops —
        the container's insert, a cross-shard forward, the eventual GC
        reclaim — measure against the same birth instant.  Delegates
        back to :meth:`_handle` with the origin consumed, so the normal
        trace/timing path runs unchanged inside the span context.
        """
        subject = self.service.connection_container(
            args.get("connection_id"))
        if subject is None:
            schema = ops.OP_SCHEMAS.get(opcode)
            subject = schema.name if schema else f"op{opcode}"
        _spanmod.GLOBAL_SPANS.record(
            _spanmod.LANE_DEQUEUE, subject, origin, trace_id=trace_id)
        if trace_id is not None:
            args[ops.TRACE_ID_KEY] = trace_id
        prior = _spanmod.set_context((origin, subject))
        try:
            return self._handle(request_id, opcode, args)
        finally:
            _spanmod.set_context(prior)

    def _execute(self, request_id: int, opcode: int, args):
        """``service.execute`` with lane-liveness protection.

        On a lane thread, a PUT/GET that may wait is probed with
        ``block=False`` first — the hot path (item present, channel has
        room) stays inline with zero extra threads.  Only when the probe
        says the op would genuinely block does it move to a transient
        worker, with this connection's lane client suspended so the
        device's later operations keep their issue order; the shared
        lane meanwhile serves its other clients.  Without this, one
        consumer blocked in ``get`` would wedge every connection on its
        lane — fatal at ``lanes=1``, where the producer whose put would
        unblock it is queued *behind* it.
        """
        if (opcode in _BLOCKING_OPS and args.get("block")
                and lanes.current_client() is not None):
            probe = dict(args)
            probe["block"] = False
            try:
                return self.service.execute(opcode, probe)
            except _WOULD_BLOCK:
                self._offload_blocking(request_id, opcode, args)
                raise _Offloaded()
        return self.service.execute(opcode, args)

    def _offload_blocking(self, request_id: int, opcode: int,
                          args) -> None:
        """Move a genuinely-blocking container op to its own transient
        thread.  Thread cost is O(concurrently-blocked ops) — paid only
        while an op actually waits — not O(connections)."""
        client = lanes.current_client()
        assert client is not None
        client.suspend()
        # _handle already consumed the frame's trace/origin envelope, so
        # the re-entry would run contextless.  Re-attach whatever this
        # lane thread currently carries: the worker's container insert
        # then still lands on the item's original timeline.
        trace_id = tracepoints.current_trace_id()
        if trace_id is not None:
            args[ops.TRACE_ID_KEY] = trace_id
        entry = _spanmod.current_entry()
        if entry is not None:
            args[ops.ORIGIN_KEY] = entry[0]

        def _work() -> None:
            try:
                # Re-enters _handle off the lane: current_client() is
                # None there, so the op executes with real blocking
                # semantics and sends its own response.
                self._handle(request_id, opcode, args)
            finally:
                client.resume()

        threading.Thread(target=_work, name=f"{self._name}-blocked-op",
                         daemon=True).start()

    def _handle_inner(self, request_id: int, opcode: int, args) -> object:
        is_cast = request_id == ops.CAST_REQUEST_ID
        try:
            if opcode == ops.OP_RESUME and \
                    self._resume_lookup is not None:
                results = self._resume(args)
                if not is_cast:
                    self._send(ops.encode_ok_response(
                        request_id, opcode, results,
                        reclaims=self.service.drain_reclaims(),
                    ))
                return None
            if opcode == ops.OP_BYE:
                # A clean goodbye races queued casts: the device fires
                # consume casts and BYE back to back, TCP delivers them in
                # order, but the casts execute on the lane clients while
                # BYE runs here.  Executing BYE first would detach the
                # connections out from under the queued consumes and lose
                # them (leaving items live forever), so drain the lanes
                # before saying goodbye.
                self._drain_lanes()
            results = self._execute(request_id, opcode, args)
            self.requests_served += 1
            if opcode == ops.OP_DETACH:
                # Clean departure: the connection's lane bookkeeping
                # goes with it (not retained until server close).
                self._evict_lane(args.get("connection_id"))
            if opcode == ops.OP_BYE:
                if not is_cast:
                    self._send(ops.encode_ok_response(
                        request_id, opcode, results,
                        reclaims=self.service.drain_reclaims(),
                    ))
                self.close()
                return None
            if is_cast:
                return None  # fire-and-forget: no response
            parts = ops.encode_ok_response_parts(
                request_id, opcode, results,
                reclaims=self.service.drain_reclaims(),
            )
        except _Offloaded:
            # A dedicated worker owns the op now; it will respond.
            return _OFFLOADED
        except Exception as exc:  # noqa: BLE001 - becomes an error frame
            if is_cast:
                _log.warning(
                    "cast %s from %s failed: %r",
                    ops.OP_SCHEMAS.get(opcode,
                                       ops.OP_SCHEMAS[ops.OP_PING]).name,
                    self.service.session_id, exc,
                )
                return None
            parts = [ops.encode_error_response(
                request_id, type(exc).__name__, str(exc),
                reclaims=self.service.drain_reclaims(),
            )]
        self._send_parts(parts)
        return None

    def _resume(self, args) -> dict:
        """Adopt a parked session: swap this surrogate's (empty, fresh)
        service for the one the reconnecting device left behind.

        Runs before any other request of the new connection — inline on
        the receive loop in thread mode, on the lifecycle worker with
        reads paused in reactor mode — so the swap cannot race the
        session's own operations.  The discarded fresh service held no
        resources — it existed only to field this handshake.
        """
        assert self._resume_lookup is not None
        resumed = self._resume_lookup(
            self, args["session_id"], args["token"]
        )
        old_id = self.service.session_id
        self.service = resumed
        trace(tracepoints.JOIN, resumed.session_id,
              client=resumed.client_name, space=resumed.space,
              resumed=True)
        _log.info(
            "session %s resumed (%d connections) on surrogate %s",
            resumed.session_id, resumed.connection_count(), old_id,
        )
        return {"space": resumed.space,
                "connections": resumed.connection_count()}

    def _send(self, frame: bytes) -> None:
        try:
            self.connection.send_frame(frame)
        except TransportClosedError:
            self._on_send_failed()

    def _send_parts(self, parts) -> None:
        """Scatter/gather send: response header and payload buffers go
        to the kernel as one ``sendmsg``, so a cached item payload is
        never copied into an intermediate response frame."""
        try:
            self.connection.send_frame_parts(parts)
        except TransportClosedError:
            self._on_send_failed()

    def _on_send_failed(self) -> None:
        if self._reactor is not None \
                and self._reactor.on_loop_thread():
            self._teardown_async()
        else:
            self.close(park=True)

    # -- teardown --------------------------------------------------------------------

    def _on_transport_closed(self) -> None:
        """Close-hook from the transport: someone closed our socket
        locally (not the peer).  Skip when the surrogate itself is
        already closing — its own close() drives the same teardown."""
        if self._closed.is_set():
            return
        self._teardown_async()

    def _teardown_async(self) -> None:
        """Take the connection off the loop; close on a worker thread.

        ``close`` drains lane queues (a bounded wait), which must never
        happen on the reactor thread itself.
        """
        if self._teardown_started:
            return
        self._teardown_started = True
        self._rx_paused = True
        if self._reactor is not None:
            self._reactor.remove_reader(self.connection.raw_socket)
        threading.Thread(
            target=self.close, kwargs={"park": True},
            name=f"{self._name}-teardown", daemon=True,
        ).start()

    #: Shared drain budget at teardown.  The old per-executor join gave
    #: each worker its own 2 s — worst case 2 s × connections; now every
    #: client drains against one absolute deadline.
    _DRAIN_TIMEOUT = 2.0

    def _drain_lanes(self) -> None:
        """Run every queued request of this surrogate to completion.

        The waits race ONE shared deadline: while we wait on the first
        client, the others' lanes keep executing in parallel, so a
        surrogate (or a server with 1000 of them) tears down in at most
        ``_DRAIN_TIMEOUT`` seconds total.  Deadlock-safe when close()
        runs on a lane thread — a client affined to the current lane is
        drained inline by :meth:`~repro.runtime.lanes.LaneClient.drain`.
        """
        with self._lanes_lock:
            clients = list(self._lanes.values())
        if not clients:
            return
        deadline = time.monotonic() + self._DRAIN_TIMEOUT
        for client in clients:
            if not client.drain(
                    timeout=max(0.0, deadline - time.monotonic())):
                _log.warning(
                    "surrogate %s: %s still busy at the teardown "
                    "deadline", self.service.session_id, client.name,
                )

    def close(self, park: bool = False) -> None:
        """Annihilate the surrogate: release session state, drop the pipe.

        Idempotent; called on clean BYE, device disconnect, lease expiry,
        and server shutdown.  With ``park=True`` (the disconnect path) a
        session that never said BYE is offered to the server's
        grace-period table instead of being closed, so a reconnecting
        device can RESUME it; everything else about the surrogate still
        dies.  Lease expiry and shutdown pass ``park=False``: those are
        verdicts, not outages.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        if self._reactor is not None:
            # Off the selector before the fd closes (fd-reuse safety);
            # synchronous, and a no-op if teardown already removed it.
            self._rx_paused = True
            self._reactor.remove_reader(self.connection.raw_socket)
        # Same ordering as the BYE path: queued casts must finish before
        # the session's connections detach underneath them.
        self._drain_lanes()
        with self._lanes_lock:
            clients = list(self._lanes.values())
            self._lanes.clear()
        for client in clients:
            client.evict()
        if self._own_pool is not None:
            self._own_pool.close(timeout=self._DRAIN_TIMEOUT)
        parked = False
        if park and self._park is not None and not self.service.closed:
            parked = self._park(self.service)
        if not parked:
            self.service.close()
        self.connection.close()
        if self._on_close is not None:
            self._on_close(self)
        trace(tracepoints.LEAVE, self.service.session_id,
              requests=self.requests_served, parked=parked)
        _log.info(
            "surrogate %s %s after %d requests",
            self.service.session_id,
            "parked" if parked else "closed", self.requests_served,
        )

    def __repr__(self) -> str:
        state = "alive" if self.alive else "closed"
        return (
            f"<Surrogate {self.service.session_id} "
            f"client={self.service.client_name!r} {state}>"
        )


class LeaseReaper:
    """Failure-detection extension: reaps surrogates idle past a lease.

    The paper's stated limitation — "if an end device does not cleanly
    leave an application ... it will leave its surrogate on the cluster in
    an indeterminate state" (§3.3) — is closed by treating device silence
    longer than *lease_timeout* as a failure.  Client libraries keep the
    lease alive with periodic PINGs.

    The reactor server hangs lease sweeps off its event loop instead of
    running this thread; the class remains for thread-mode embeddings.
    """

    def __init__(self, surrogates: Dict[str, Surrogate],
                 lock: threading.Lock, lease_timeout: float,
                 check_interval: Optional[float] = None) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self._surrogates = surrogates
        self._lock = lock
        self._lease = lease_timeout
        self._interval = check_interval or lease_timeout / 4
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="surrogate-reaper", daemon=True
        )

    def start(self) -> None:
        """Begin the periodic sweep."""
        self._thread.start()

    def stop(self) -> None:
        """Stop sweeping and join the reaper thread."""
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(timeout=self._interval):
            with self._lock:
                expired = [
                    s for s in self._surrogates.values()
                    if s.alive and s.idle_seconds > self._lease
                ]
            for surrogate in expired:
                _log.warning(
                    "lease expired for %s (idle %.1fs) — reaping",
                    surrogate.service.session_id, surrogate.idle_seconds,
                )
                surrogate.close()
