"""Surrogate threads: the cluster-side representatives of end devices.

"Upon joining, a specific surrogate thread is created on the cluster on
behalf of the new end device.  All subsequent D-Stampede calls from this
end device are fielded and carried out by this specific surrogate thread"
(§3.2.2).

A :class:`Surrogate` owns one TCP connection and one
:class:`~repro.runtime.service.SessionService`.  The receive loop decodes
request frames; each request is executed on its own worker thread so a
blocking ``get`` from the device's display thread never stalls the puts
of its producer thread (both share the device's single connection).

Beyond the paper (which lists failure handling as an open limitation), a
surrogate carries a **lease**: the server can reap surrogates whose
device has been silent too long, instead of leaving them "in an
indeterminate state".
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import StampedeError, TransportClosedError
from repro.runtime import ops
from repro.runtime.service import SessionService
from repro.transport.tcp import TcpConnection
from repro.util import trace as tracepoints
from repro.util.logging import get_logger
from repro.util.trace import trace

_log = get_logger("runtime.surrogate")


class Surrogate:
    """The cluster-side agent of one end device.

    Parameters
    ----------
    connection, service, on_close:
        As before: the device's transport, its session state, and the
        server's bookkeeping callback.
    park:
        Optional ``park(service) -> bool``.  When the transport dies
        *without* a clean BYE, the surrogate offers its session here
        instead of closing it; True means the server parked it for a
        grace period so a reconnecting device can RESUME it.
    resume_lookup:
        Optional ``resume_lookup(surrogate, session_id, token) ->
        SessionService``.  Serves the RESUME wire op: returns the parked
        session to adopt or raises
        :class:`~repro.errors.SessionResumeError`.
    """

    def __init__(self, connection: TcpConnection, service: SessionService,
                 on_close: Optional[Callable[["Surrogate"], None]] = None,
                 park: Optional[Callable[[SessionService], bool]] = None,
                 resume_lookup: Optional[
                     Callable[["Surrogate", str, str], SessionService]
                 ] = None) -> None:
        self.connection = connection
        self.service = service
        self._on_close = on_close
        self._park = park
        self._resume_lookup = resume_lookup
        self._closed = threading.Event()
        self._send_lock = threading.Lock()
        self._executors: Dict[int, "_SerialExecutor"] = {}
        self._executors_lock = threading.Lock()
        self.last_activity = time.monotonic()
        self.requests_served = 0
        self._thread = threading.Thread(
            target=self._serve, name=f"surrogate-{service.session_id}",
            daemon=True,
        )

    def start(self) -> "Surrogate":
        """Begin serving the device; returns self."""
        trace(tracepoints.JOIN, self.service.session_id,
              client=self.service.client_name, space=self.service.space)
        self._thread.start()
        return self

    @property
    def alive(self) -> bool:
        """False once the surrogate has been closed."""
        return not self._closed.is_set()

    @property
    def idle_seconds(self) -> float:
        """Seconds since the device's last request (lease age)."""
        return time.monotonic() - self.last_activity

    # -- serving ------------------------------------------------------------------

    def _serve(self) -> None:
        try:
            while not self._closed.is_set():
                try:
                    frame = self.connection.recv_frame(timeout=0.5)
                except TransportClosedError:
                    break
                except StampedeError:
                    continue  # recv timeout: poll the closed flag
                self.last_activity = time.monotonic()
                self._dispatch(frame)
        finally:
            # The transport died (or close() was called): a session that
            # never said BYE may be parked for resume.
            self.close(park=True)

    def _dispatch(self, frame: bytes) -> None:
        """Route one request to the right execution context.

        * Operations on a container connection (put/get/consume/...)
          run on that connection's **serial executor**: a lazily-created
          per-connection worker that preserves issue order even when an
          operation blocks — without it, a blocked put racing later puts
          (possible with fire-and-forget streaming) could fill a bounded
          channel out of order and deadlock an in-order consumer.
          Different connections execute in parallel, so a display
          thread's blocking get never stalls its device's producer.
        * ``attach`` with ``wait`` may block on the name server: its own
          worker thread.
        * Everything else (HELLO, PING, NS ops, INSPECT...) is fast and
          runs inline on the receive loop.
        """
        try:
            request_id, opcode, args = ops.decode_request(frame)
        except Exception as exc:  # noqa: BLE001 - hostile frame
            try:
                request_id = ops.peek_request_id(frame)
            except Exception:  # noqa: BLE001 - not even an envelope
                request_id = ops.CAST_REQUEST_ID
            if request_id != ops.CAST_REQUEST_ID:
                self._send(ops.encode_error_response(
                    request_id, type(exc).__name__, str(exc),
                    reclaims=self.service.drain_reclaims(),
                ))
            return
        connection_id = args.get("connection_id")
        if connection_id is not None:
            if not self.service.has_connection(connection_id):
                # Unknown/detached id: answer inline with the usual
                # RpcError instead of materialising an executor thread —
                # otherwise a hostile client could mint one thread per
                # random id.
                self._handle(request_id, opcode, args)
                return
            self._executor(connection_id).submit(
                (request_id, opcode, args)
            )
            return
        if opcode == ops.OP_ATTACH and args.get("wait"):
            worker = threading.Thread(
                target=self._handle, args=(request_id, opcode, args),
                name=f"{self._thread.name}-attach", daemon=True,
            )
            worker.start()
            return
        self._handle(request_id, opcode, args)

    def _executor(self, connection_id: int) -> "_SerialExecutor":
        with self._executors_lock:
            executor = self._executors.get(connection_id)
            if executor is None:
                executor = _SerialExecutor(self, connection_id)
                self._executors[connection_id] = executor
            return executor

    def _handle(self, request_id: int, opcode: int, args) -> None:
        is_cast = request_id == ops.CAST_REQUEST_ID
        try:
            if opcode == ops.OP_RESUME and \
                    self._resume_lookup is not None:
                results = self._resume(args)
                if not is_cast:
                    self._send(ops.encode_ok_response(
                        request_id, opcode, results,
                        reclaims=self.service.drain_reclaims(),
                    ))
                return
            if opcode == ops.OP_BYE:
                # A clean goodbye races queued casts: the device fires
                # consume casts and BYE back to back, TCP delivers them in
                # order, but the casts execute on per-connection worker
                # threads while BYE runs inline here.  Executing BYE
                # first would detach the connections out from under the
                # queued consumes and lose them (leaving items live
                # forever), so drain the workers before saying goodbye.
                self._drain_executors()
            results = self.service.execute(opcode, args)
            self.requests_served += 1
            if opcode == ops.OP_BYE:
                if not is_cast:
                    self._send(ops.encode_ok_response(
                        request_id, opcode, results,
                        reclaims=self.service.drain_reclaims(),
                    ))
                self.close()
                return
            if is_cast:
                return  # fire-and-forget: no response
            response = ops.encode_ok_response(
                request_id, opcode, results,
                reclaims=self.service.drain_reclaims(),
            )
        except Exception as exc:  # noqa: BLE001 - becomes an error frame
            if is_cast:
                _log.warning(
                    "cast %s from %s failed: %r",
                    ops.OP_SCHEMAS.get(opcode,
                                       ops.OP_SCHEMAS[ops.OP_PING]).name,
                    self.service.session_id, exc,
                )
                return
            response = ops.encode_error_response(
                request_id, type(exc).__name__, str(exc),
                reclaims=self.service.drain_reclaims(),
            )
        self._send(response)

    def _resume(self, args) -> dict:
        """Adopt a parked session: swap this surrogate's (empty, fresh)
        service for the one the reconnecting device left behind.

        Runs inline on the receive loop before any other request of the
        new connection, so the swap cannot race the session's own
        operations.  The discarded fresh service held no resources — it
        existed only to field this handshake.
        """
        assert self._resume_lookup is not None
        resumed = self._resume_lookup(
            self, args["session_id"], args["token"]
        )
        old_id = self.service.session_id
        self.service = resumed
        trace(tracepoints.JOIN, resumed.session_id,
              client=resumed.client_name, space=resumed.space,
              resumed=True)
        _log.info(
            "session %s resumed (%d connections) on surrogate %s",
            resumed.session_id, resumed.connection_count(), old_id,
        )
        return {"space": resumed.space,
                "connections": resumed.connection_count()}

    def _send(self, frame: bytes) -> None:
        try:
            self.connection.send_frame(frame)
        except TransportClosedError:
            self.close(park=True)

    # -- teardown --------------------------------------------------------------------

    def _drain_executors(self) -> None:
        """Run every queued request to completion and park the workers."""
        with self._executors_lock:
            executors = list(self._executors.values())
        for executor in executors:
            executor.stop()
        for executor in executors:
            executor.join(timeout=2.0)

    def close(self, park: bool = False) -> None:
        """Annihilate the surrogate: release session state, drop the pipe.

        Idempotent; called on clean BYE, device disconnect, lease expiry,
        and server shutdown.  With ``park=True`` (the disconnect path) a
        session that never said BYE is offered to the server's
        grace-period table instead of being closed, so a reconnecting
        device can RESUME it; everything else about the surrogate still
        dies.  Lease expiry and shutdown pass ``park=False``: those are
        verdicts, not outages.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        # Same ordering as the BYE path: queued casts must finish before
        # the session's connections detach underneath them.
        self._drain_executors()
        with self._executors_lock:
            self._executors.clear()
        parked = False
        if park and self._park is not None and not self.service.closed:
            parked = self._park(self.service)
        if not parked:
            self.service.close()
        self.connection.close()
        if self._on_close is not None:
            self._on_close(self)
        trace(tracepoints.LEAVE, self.service.session_id,
              requests=self.requests_served, parked=parked)
        _log.info(
            "surrogate %s %s after %d requests",
            self.service.session_id,
            "parked" if parked else "closed", self.requests_served,
        )

    def __repr__(self) -> str:
        state = "alive" if self.alive else "closed"
        return (
            f"<Surrogate {self.service.session_id} "
            f"client={self.service.client_name!r} {state}>"
        )


class _SerialExecutor:
    """In-order executor for one wire connection's operations.

    A lazily-started daemon thread drains a FIFO of requests, so the
    issue order a device thread observes locally is exactly the
    execution order on the cluster — including across fire-and-forget
    casts — while other connections proceed in parallel.
    """

    _STOP = object()

    def __init__(self, surrogate: Surrogate, connection_id: int) -> None:
        import queue

        self._surrogate = surrogate
        self._queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._run,
            name=(f"surrogate-{surrogate.service.session_id}"
                  f"-conn{connection_id}"),
            daemon=True,
        )
        self._thread.start()

    def submit(self, request) -> None:
        """Enqueue one decoded request for in-order execution."""
        self._queue.put(request)

    def stop(self) -> None:
        """Stop the executor after the queued requests drain."""
        self._queue.put(self._STOP)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the drain to finish (no-op from the executor's own
        thread — a BYE executes *on* this executor and must not
        self-join)."""
        if threading.current_thread() is self._thread:
            return
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        while True:
            request = self._queue.get()
            if request is self._STOP:
                return
            request_id, opcode, args = request
            self._surrogate._handle(request_id, opcode, args)


class LeaseReaper:
    """Failure-detection extension: reaps surrogates idle past a lease.

    The paper's stated limitation — "if an end device does not cleanly
    leave an application ... it will leave its surrogate on the cluster in
    an indeterminate state" (§3.3) — is closed by treating device silence
    longer than *lease_timeout* as a failure.  Client libraries keep the
    lease alive with periodic PINGs.
    """

    def __init__(self, surrogates: Dict[str, Surrogate],
                 lock: threading.Lock, lease_timeout: float,
                 check_interval: Optional[float] = None) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self._surrogates = surrogates
        self._lock = lock
        self._lease = lease_timeout
        self._interval = check_interval or lease_timeout / 4
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="surrogate-reaper", daemon=True
        )

    def start(self) -> None:
        """Begin serving the device; returns self."""
        self._thread.start()

    def stop(self) -> None:
        """Stop the executor after the queued requests drain."""
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(timeout=self._interval):
            with self._lock:
                expired = [
                    s for s in self._surrogates.values()
                    if s.alive and s.idle_seconds > self._lease
                ]
            for surrogate in expired:
                _log.warning(
                    "lease expired for %s (idle %.1fs) — reaping",
                    surrogate.service.session_id, surrogate.idle_seconds,
                )
                surrogate.close()
