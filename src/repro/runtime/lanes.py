"""Bounded lane pool: O(lanes) threads for O(devices) connections.

The paper's Octopus model (§4) attaches *many* tentacles — cameras,
iPaqs, trackers — to one cluster body.  The original surrogate design
("a specific surrogate thread is created on the cluster on behalf of the
new end device", §3.2.2) materialises cluster threads per device; our
per-connection serial executors did the same one layer down, so 1000
connected devices meant ~1000 worker threads of stack and scheduler
pressure behind a single-threaded reactor.

A :class:`LanePool` replaces the swarm with a fixed set of **lanes**.
Each wire connection binds a :class:`LaneClient` — a FIFO sub-queue
affinity-mapped to one lane at bind time — and every lane thread drains
the sub-queues assigned to it round-robin, one element at a time.  The
ordering contract is unchanged from the executor design:

* tasks of one client execute in submit order, never concurrently;
* a :meth:`LaneClient.submit_many` chunk executes back to back;
* tasks of *different* clients have no mutual order (true before too —
  separate executors ran in parallel).

Liveness is the part a bounded pool must add deliberately: a container
op that blocks (a consumer's ``get`` waiting for the producer's next
put) would wedge every connection sharing its lane — fatal at
``lanes=1``, where the producer's put sits *behind* the blocked get.
The runner cooperates instead: it probes non-blockingly, and when an op
genuinely must wait it moves it to a transient worker, calls
:meth:`LaneClient.suspend`, and returns :data:`STOP`; the lane moves on
to other clients while the suspended client's later tasks wait — order
preserved — until :meth:`LaneClient.resume`.

Idle lanes park on a condition variable: zero wakeups, matching the
reactor's discipline.  Lane threads start lazily, so a pool sized
``min(32, 4×cpu)`` costs nothing until traffic actually fans out.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.obs.metrics import COUNT_BOUNDS, GLOBAL_METRICS as _metrics
from repro.util.logging import get_logger

_log = get_logger("runtime.lanes")

#: Environment override for the default lane count.
LANES_ENV = "DSTAMPEDE_LANES"

#: Sentinel a runner returns to stop its client's current element:
#: the runner has suspended the client (see :meth:`LaneClient.suspend`)
#: and any unexecuted tasks of the element are pushed back in order.
STOP = object()

#: One decoded request, opaque to the pool (the surrogate's
#: ``(request_id, opcode, args)`` tuples in practice).
Task = Any
#: ``runner(task) -> None | STOP``.
Runner = Callable[[Task], Any]

_SUBMITTED = _metrics.counter("runtime.lanes.submitted")
_EXECUTED = _metrics.counter("runtime.lanes.executed")
_OFFLOADS = _metrics.counter("runtime.lanes.suspends")
_EVICTIONS = _metrics.counter("runtime.lanes.evictions")
_DEPTH_HIST = _metrics.histogram(
    "runtime.lanes.queue_depth", bounds=COUNT_BOUNDS, unit="tasks")

_tls = threading.local()


def current_client() -> Optional["LaneClient"]:
    """The :class:`LaneClient` whose task the calling thread is
    executing, or ``None`` off the lane threads.

    Runners use this to decide whether blocking is safe: on a dedicated
    thread (observer ops, offloaded blocking ops, thread-mode receive
    loops) it is; on a lane thread it would stall every other client of
    the lane.
    """
    return getattr(_tls, "client", None)


def default_lane_count() -> int:
    """``DSTAMPEDE_LANES`` when set and valid, else ``min(32, 4×cpu)``."""
    raw = os.environ.get(LANES_ENV, "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            _log.warning("ignoring non-integer %s=%r", LANES_ENV, raw)
        else:
            if value >= 1:
                return value
            _log.warning("ignoring non-positive %s=%r", LANES_ENV, raw)
    return min(32, 4 * (os.cpu_count() or 1))


class LaneClient:
    """One connection's FIFO sub-queue, affinity-mapped to one lane.

    All state is guarded by the owning lane's lock.  A client is
    *scheduled* while it sits in its lane's ready deque or a lane thread
    is executing one of its elements; at most one thread ever runs a
    given client's tasks, which is the whole ordering argument.
    """

    __slots__ = ("_lane", "_runner", "name", "_tasks", "_scheduled",
                 "_active", "_suspended", "_evicted")

    def __init__(self, lane: "_Lane", runner: Runner, name: str) -> None:
        self._lane = lane
        self._runner = runner
        self.name = name
        #: FIFO of elements: single tasks, or lists (submit_many chunks).
        self._tasks: Deque[Any] = deque()
        self._scheduled = False
        self._active = False
        self._suspended = False
        self._evicted = False

    # -- submission ----------------------------------------------------------

    def submit(self, task: Task) -> None:
        """Enqueue one task for in-order execution."""
        self._enqueue(task, 1)

    def submit_many(self, tasks: List[Task]) -> None:
        """Enqueue a run of tasks as one back-to-back chunk.

        The whole run costs a single ready-queue handoff; the lane
        executes the items consecutively in list order.
        """
        chunk = list(tasks)
        if chunk:
            self._enqueue(chunk, len(chunk))

    def _enqueue(self, element: Any, count: int) -> None:
        lane = self._lane
        with lane.lock:
            if self._evicted or lane.stopping:
                # Departed connection / closing pool: the work has no
                # observer left (mirrors requests queued behind the old
                # executor's stop sentinel, which never ran either).
                return
            self._tasks.append(element)
            lane.depth += count
            if _metrics.enabled:
                _SUBMITTED.value += count
                _DEPTH_HIST.observe(lane.depth)
            if not self._scheduled and not self._suspended:
                self._scheduled = True
                lane.ready.append(self)
            lane.ensure_thread()
            lane.cond.notify_all()

    # -- liveness cooperation ------------------------------------------------

    def suspend(self) -> None:
        """Park this client: no further tasks run until :meth:`resume`.

        Called by the runner *from the client's own element* just before
        it returns :data:`STOP` — the runner moved the in-flight op to a
        dedicated thread and later tasks of this connection must wait
        behind it.
        """
        with self._lane.lock:
            self._suspended = True
            if _metrics.enabled:
                _OFFLOADS.value += 1

    def requeue_front(self, tasks: List[Task]) -> None:
        """Push *tasks* back at the head of the queue, preserving order.

        Used with :meth:`suspend` when an element stops mid-chunk: the
        unexecuted remainder must run first once the client resumes.
        """
        if not tasks:
            return
        lane = self._lane
        with lane.lock:
            if self._evicted:
                return
            self._tasks.appendleft(list(tasks))
            lane.depth += len(tasks)

    def resume(self) -> None:
        """Lift a :meth:`suspend`; queued tasks become runnable again."""
        lane = self._lane
        with lane.lock:
            self._suspended = False
            if self._tasks and not self._scheduled and not self._evicted:
                self._scheduled = True
                lane.ready.append(self)
            # Unconditional: drain()ers wait for suspension to lift even
            # when nothing is queued (the offloaded op just finished).
            lane.cond.notify_all()

    # -- teardown ------------------------------------------------------------

    def pending(self) -> int:
        """Queued (not yet executed) task count, for tests/diagnostics."""
        with self._lane.lock:
            return sum(
                len(e) if isinstance(e, list) else 1 for e in self._tasks
            )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every queued task has executed; True on success.

        Deadlock-safe from anywhere: called on this client's own lane
        thread (a surrogate closing itself after a send failure) it
        executes the queued tasks *inline* instead of waiting for the
        worker it is standing on.
        """
        lane = self._lane
        deadline = None if timeout is None else time.monotonic() + timeout
        if threading.current_thread() is lane.thread:
            return self._drain_inline(deadline)
        with lane.lock:
            # Suspension counts as in-flight work: an offloaded blocking
            # op is still this connection's op, and BYE must not detach
            # the session out from under it.
            while self._tasks or self._active or self._suspended:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                lane.cond.wait(remaining)
            return True

    def _drain_inline(self, deadline: Optional[float]) -> bool:
        """Lane-thread drain: run our own queue in place.

        Only the lane thread ever executes this client, and that thread
        is *us* — so popping and running the tasks here cannot race
        another executor, and waiting would self-deadlock.
        """
        lane = self._lane
        while True:
            with lane.lock:
                if self._suspended:
                    # An op of ours is in flight on an offload worker;
                    # wait for its resume() before running later tasks.
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                    lane.cond.wait(remaining)
                    continue
                if not self._tasks:
                    return True
                element = self._tasks.popleft()
                lane.depth -= len(element) if isinstance(element, list) \
                    else 1
            lane.run_element(self, element)

    def evict(self) -> None:
        """Forget this client: departed connections must not keep queue
        state alive until the server closes.  Queued tasks are dropped
        (the session they belong to is gone)."""
        lane = self._lane
        with lane.lock:
            if self._evicted:
                return
            self._evicted = True
            dropped = sum(
                len(e) if isinstance(e, list) else 1 for e in self._tasks
            )
            self._tasks.clear()
            lane.depth -= dropped
            if _metrics.enabled:
                _EVICTIONS.value += 1
            lane.cond.notify_all()

    def __repr__(self) -> str:
        return (f"<LaneClient {self.name} lane={self._lane.index} "
                f"pending={self.pending()}>")


class _Lane:
    """One worker thread plus the ready-queue of its assigned clients."""

    __slots__ = ("index", "name", "lock", "cond", "ready", "thread",
                 "stopping", "busy", "depth")

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = f"{name}-{index}"
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.ready: Deque[LaneClient] = deque()
        self.thread: Optional[threading.Thread] = None
        self.stopping = False
        self.busy = False
        #: Tasks queued (not yet popped for execution) across clients.
        self.depth = 0

    def ensure_thread(self) -> None:
        """Start the worker lazily (caller holds the lock): an idle pool
        of 32 lanes costs zero threads."""
        if self.thread is None and not self.stopping:
            self.thread = threading.Thread(
                target=self._run, name=self.name, daemon=True)
            self.thread.start()

    def run_element(self, client: LaneClient, element: Any) -> bool:
        """Execute one popped element on the calling thread.

        Returns True if the runner stopped the element early (it
        suspended the client); the unexecuted remainder has been pushed
        back in order.  Exceptions from the runner are contained: a
        shared lane must survive any single client's failure.
        """
        runner = client._runner
        prior = getattr(_tls, "client", None)
        _tls.client = client
        try:
            if isinstance(element, list):
                for position, task in enumerate(element):
                    if self._run_task(runner, task, client) is STOP:
                        client.requeue_front(element[position + 1:])
                        return True
                return False
            return self._run_task(runner, element, client) is STOP
        finally:
            _tls.client = prior

    @staticmethod
    def _run_task(runner: Runner, task: Task, client: LaneClient) -> Any:
        if _metrics.enabled:
            _EXECUTED.value += 1
        try:
            return runner(task)
        except Exception:  # noqa: BLE001 - a lane outlives its clients
            _log.exception("lane task for %s raised", client.name)
            return None

    def _run(self) -> None:
        while True:
            with self.lock:
                while not self.ready and not self.stopping:
                    self.cond.wait()  # parked: zero idle wakeups
                if not self.ready:
                    return  # stopping, and every ready client drained
                client = self.ready.popleft()
                if client._evicted or client._suspended \
                        or not client._tasks:
                    client._scheduled = False
                    continue
                element = client._tasks.popleft()
                self.depth -= len(element) if isinstance(element, list) \
                    else 1
                client._active = True
                self.busy = True
            self.run_element(client, element)
            with self.lock:
                client._active = False
                self.busy = False
                if client._tasks and not client._evicted \
                        and not client._suspended:
                    # Round-robin fairness: back of the line, so a
                    # chatty client cannot starve its lane-mates.
                    self.ready.append(client)
                else:
                    client._scheduled = False
                self.cond.notify_all()  # wake drain()ers


class LanePool:
    """A fixed set of lanes shared by every surrogate of a server.

    Parameters
    ----------
    lanes:
        Worker count; ``None`` means :func:`default_lane_count`.
    name:
        Thread-name prefix (shows up in thread-hygiene accounting).
    """

    def __init__(self, lanes: Optional[int] = None,
                 name: str = "dstampede-lane") -> None:
        count = default_lane_count() if lanes is None else int(lanes)
        if count < 1:
            raise ValueError("lane count must be >= 1")
        self._lanes = [_Lane(index, name) for index in range(count)]
        self._next = 0
        self._bind_lock = threading.Lock()
        self._closed = False

    @property
    def lane_count(self) -> int:
        """The configured number of lanes."""
        return len(self._lanes)

    def client(self, runner: Runner, name: str = "") -> LaneClient:
        """Bind a new client, affinity-mapped round-robin to a lane.

        Round-robin at bind time spreads connections evenly without any
        per-task routing cost; a client stays on its lane for life, so
        its tasks are totally ordered by that lane's single thread.
        """
        with self._bind_lock:
            lane = self._lanes[self._next % len(self._lanes)]
            self._next += 1
        return LaneClient(lane, runner, name)

    # -- introspection -------------------------------------------------------

    def queued_tasks(self) -> int:
        """Tasks waiting across all lanes (the lane-depth gauge)."""
        return sum(lane.depth for lane in self._lanes)

    def busy_lanes(self) -> int:
        """Lanes currently executing a task (the occupancy gauge)."""
        return sum(1 for lane in self._lanes if lane.busy)

    def started_threads(self) -> int:
        """Lane threads actually running (lazy start means <= lanes)."""
        return sum(
            1 for lane in self._lanes
            if lane.thread is not None and lane.thread.is_alive()
        )

    def register_gauges(self) -> None:
        """Expose this pool through the global registry (the server
        calls this for its shared pool; private per-surrogate pools stay
        unregistered so they don't fight over the gauge names)."""
        _metrics.gauge("runtime.lanes.count",
                       fn=lambda: self.lane_count)
        _metrics.gauge("runtime.lanes.depth", fn=self.queued_tasks)
        _metrics.gauge("runtime.lanes.busy", fn=self.busy_lanes)

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: float = 2.0) -> bool:
        """Stop every lane and join them under ONE shared deadline.

        Each lane finishes the elements already on its ready queue and
        exits; the joins race a single absolute deadline, so closing a
        server with 1000 formerly-connected devices costs at most
        *timeout* seconds total — not 2 s × workers like the old
        per-executor join loop.  Returns False if any lane thread was
        still alive at the deadline (it is daemonic and will not block
        interpreter exit).
        """
        self._closed = True
        for lane in self._lanes:
            with lane.lock:
                lane.stopping = True
                lane.cond.notify_all()
        deadline = time.monotonic() + timeout
        current = threading.current_thread()
        joined = True
        for lane in self._lanes:
            thread = lane.thread
            if thread is None or thread is current:
                continue  # never started, or closing from a lane thread
            thread.join(max(0.0, deadline - time.monotonic()))
            joined = joined and not thread.is_alive()
        return joined

    def __repr__(self) -> str:
        return (f"<LanePool lanes={self.lane_count} "
                f"threads={self.started_threads()} "
                f"queued={self.queued_tasks()}>")
