"""Address spaces: the protection domains of a D-Stampede computation.

"Stampede threads are POSIX-like and can be created in different
protection domains (address spaces) for memory isolation purposes"
(§3.1).  Here an address space is an in-process isolation domain: it owns
the channels and queues created in it, the threads spawned in it, and a
garbage collector sweeping its containers.

Isolation is enforced at the runtime layer: a thread whose home space
differs from a container's home space receives an
:class:`~repro.runtime.runtime.IsolatedConnection` whose values are
serialized across the boundary, never shared by reference — exactly the
observable semantics of separate OS processes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.core.channel import Channel
from repro.core.container import Container
from repro.core.gc import GarbageCollector
from repro.core.squeue import SQueue
from repro.core.threads import StampedeThread
from repro.errors import AddressSpaceError, NameAlreadyBoundError


class AddressSpace:
    """One protection domain.

    Created by :meth:`repro.runtime.runtime.Runtime.create_address_space`;
    direct construction is allowed for single-space tests.

    Parameters
    ----------
    name:
        Unique within the runtime.
    gc_interval:
        Sweep period of this space's garbage-collector daemon.
    start_gc:
        Start the daemon immediately (the runtime passes true).
    """

    def __init__(self, name: str, gc_interval: float = 0.05,
                 start_gc: bool = False) -> None:
        self.name = name
        self.gc = GarbageCollector(interval=gc_interval, start=start_gc)
        self._containers: Dict[str, Container] = {}
        self._threads: List[StampedeThread] = []
        self._lock = threading.Lock()
        self._destroyed = False

    # -- containers -----------------------------------------------------------

    def create_channel(self, name: str, capacity: Optional[int] = None,
                       overflow: str = Channel.OVERFLOW_BLOCK) -> Channel:
        """Create a channel homed in this space and register it with GC."""
        channel = Channel(name=name, capacity=capacity, overflow=overflow)
        self._add_container(channel)
        return channel

    def create_queue(self, name: str, capacity: Optional[int] = None,
                     auto_consume: bool = False) -> SQueue:
        """Create a queue homed in this space and register it with GC."""
        queue = SQueue(name=name, capacity=capacity,
                       auto_consume=auto_consume)
        self._add_container(queue)
        return queue

    def _add_container(self, container: Container) -> None:
        with self._lock:
            self._check_alive()
            if container.name in self._containers:
                container.destroy()
                raise NameAlreadyBoundError(
                    f"container {container.name!r} already exists in "
                    f"address space {self.name!r}"
                )
            self._containers[container.name] = container
        self.gc.register(container)

    def get_container(self, name: str) -> Optional[Container]:
        """The named container, or None."""
        with self._lock:
            return self._containers.get(name)

    def containers(self) -> List[Container]:
        """Snapshot of this space's containers."""
        with self._lock:
            return list(self._containers.values())

    def remove_container(self, name: str) -> None:
        """Destroy the named container and drop it from this space."""
        with self._lock:
            container = self._containers.pop(name, None)
        if container is not None:
            self.gc.unregister(container)
            container.destroy()

    # -- threads ---------------------------------------------------------------

    def spawn(self, target: Callable[..., Any], *args: Any,
              name: Optional[str] = None, **kwargs: Any) -> StampedeThread:
        """Spawn a Stampede thread whose home is this address space."""
        with self._lock:
            self._check_alive()
            thread = StampedeThread(
                target, args=args, kwargs=kwargs, name=name,
                address_space=self.name,
            )
            self._threads.append(thread)
        thread.start()
        return thread

    def threads(self) -> List[StampedeThread]:
        """Snapshot of this space's spawned threads."""
        with self._lock:
            return list(self._threads)

    def join_all(self, timeout: Optional[float] = None) -> None:
        """Join every spawned thread, re-raising the first failure."""
        for thread in self.threads():
            thread.join(timeout=timeout)

    # -- lifecycle ----------------------------------------------------------------

    @property
    def destroyed(self) -> bool:
        """Whether destroy() has run."""
        return self._destroyed

    def destroy(self) -> None:
        """Destroy the space: stop GC, destroy all containers.

        Threads are daemonic and will observe
        :class:`~repro.errors.ContainerDestroyedError` on their next
        container operation — the paper's model for a component going away.
        """
        with self._lock:
            if self._destroyed:
                return
            self._destroyed = True
            containers = list(self._containers.values())
            self._containers.clear()
        self.gc.stop(final_sweep=False)
        for container in containers:
            container.destroy()

    def _check_alive(self) -> None:
        if self._destroyed:
            raise AddressSpaceError(
                f"address space {self.name!r} has been destroyed"
            )

    def __repr__(self) -> str:
        return (
            f"<AddressSpace {self.name!r} containers={len(self._containers)}"
            f" threads={len(self._threads)}>"
        )
