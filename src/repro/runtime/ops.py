"""The operation wire protocol between client libraries and the cluster.

"The D-Stampede APIs are exported to the distributed end points in a
manner analogous to exporting a procedure call using an RPC interface"
(§3.2.1).  Every API call becomes a request frame; the surrogate answers
with a response frame.  Envelopes are XDR (cheap, fixed); *item payloads*
ride inside as opaque bytes already encoded with the client's chosen
codec (XDR for the C personality, JDR for the Java personality) — that is
where the two client libraries genuinely differ, exactly as in the paper.

Frame layouts::

    request  := u32 request_id | u32 opcode | args...
    response := u32 request_id | u32 status | reclaims | body
    reclaims := u32 count | count * (string container, hyper timestamp)
    body     := results...            (status == OK)
              | string type, string message   (status == ERROR)

``request_id`` 0 marks a **cast**: fire-and-forget, the surrogate sends
no response (errors are logged cluster-side only).  Streaming producers
use casts for ``put``/``consume`` so a frame costs no round trip; TCP
plus the surrogate's in-order inline execution preserve operation order
relative to later synchronous calls.

Reclaim notifications piggyback on every response — "the generic handler
... collects the information on behalf of the end device and communicates
it to the end device at an opportune time (for e.g. when the next
D-Stampede API call comes from the end device)" (§3.2.4).

Args/results are declared in :data:`OP_SCHEMAS` and packed generically;
adding an operation means adding one table row, keeping client stubs and
the server dispatcher mechanically in sync.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DecodeError, RpcError
from repro.marshal.xdr import XdrDecoder, XdrEncoder

# -- opcodes -----------------------------------------------------------------

OP_HELLO = 1
OP_CREATE_CHANNEL = 2
OP_CREATE_QUEUE = 3
OP_ATTACH = 4
OP_DETACH = 5
OP_PUT = 6
OP_GET = 7
OP_CONSUME = 8
OP_CONSUME_UNTIL = 9
OP_NS_REGISTER = 10
OP_NS_UNREGISTER = 11
OP_NS_LOOKUP = 12
OP_NS_LIST = 13
OP_PING = 14
OP_BYE = 15
OP_SET_REALTIME = 16
OP_GC_REPORT = 17
OP_INSPECT = 18
OP_RESUME = 19
OP_PUT_BATCH = 20
OP_CONSUME_BATCH = 21
OP_STATS = 22
OP_TRACE_DUMP = 23
OP_SHARD_MAP = 24
OP_NS_REFRESH = 25
OP_SPAN_DUMP = 26
OP_PROF_DUMP = 27

STATUS_OK = 0
STATUS_ERROR = 1

#: The reserved request id marking a fire-and-forget cast.
CAST_REQUEST_ID = 0

#: Virtual-time kinds on the wire (GET requests).
VT_CONCRETE = 0
VT_NEWEST = 1
VT_OLDEST = 2

#: Field type codes used by the schema table.
#: str / u32 / hyper / bool / double / bytes / strlist
_FieldSpec = Tuple[str, str]


@dataclass(frozen=True)
class OpSchema:
    """Argument and result layout for one operation."""

    name: str
    args: Sequence[_FieldSpec]
    results: Sequence[_FieldSpec]


OP_SCHEMAS: Dict[int, OpSchema] = {
    OP_HELLO: OpSchema(
        "hello",
        # ``token`` is the resume credential: presented in a later RESUME
        # to reclaim this session after a dropped connection.
        args=[("client_name", "str"), ("codec", "str")],
        results=[("session_id", "str"), ("space", "str"),
                 ("token", "str")],
    ),
    OP_CREATE_CHANNEL: OpSchema(
        "create_channel",
        args=[("name", "str"), ("space", "str"), ("bounded", "bool"),
              ("capacity", "u32")],
        results=[],
    ),
    OP_CREATE_QUEUE: OpSchema(
        "create_queue",
        args=[("name", "str"), ("space", "str"), ("bounded", "bool"),
              ("capacity", "u32"), ("auto_consume", "bool")],
        results=[],
    ),
    OP_ATTACH: OpSchema(
        "attach",
        # ``filter`` is a codec-encoded declarative attention-filter spec
        # (see repro.core.filters); empty bytes = no filter.
        args=[("container", "str"), ("mode", "str"),
              ("wait", "bool"), ("wait_timeout", "double"),
              ("filter", "bytes")],
        results=[("connection_id", "u32"), ("kind", "str")],
    ),
    OP_DETACH: OpSchema(
        "detach",
        args=[("connection_id", "u32")],
        results=[],
    ),
    OP_PUT: OpSchema(
        "put",
        args=[("connection_id", "u32"), ("timestamp", "hyper"),
              ("payload", "bytes"), ("block", "bool"),
              ("has_timeout", "bool"), ("timeout", "double")],
        results=[],
    ),
    OP_GET: OpSchema(
        "get",
        args=[("connection_id", "u32"), ("vt_kind", "u32"),
              ("timestamp", "hyper"), ("block", "bool"),
              ("has_timeout", "bool"), ("timeout", "double")],
        results=[("timestamp", "hyper"), ("payload", "bytes")],
    ),
    OP_CONSUME: OpSchema(
        "consume",
        args=[("connection_id", "u32"), ("timestamp", "hyper")],
        results=[],
    ),
    OP_CONSUME_UNTIL: OpSchema(
        "consume_until",
        args=[("connection_id", "u32"), ("timestamp", "hyper")],
        results=[],
    ),
    OP_NS_REGISTER: OpSchema(
        "ns_register",
        # ``ttl`` (seconds, when ``has_ttl``) turns the binding into a
        # lease: it must be refreshed (any PING from the registering
        # session refreshes it) or the name server purges it.
        args=[("name", "str"), ("kind", "str"), ("metadata", "bytes"),
              ("has_ttl", "bool"), ("ttl", "double")],
        results=[],
    ),
    OP_NS_UNREGISTER: OpSchema(
        "ns_unregister",
        args=[("name", "str")],
        results=[],
    ),
    OP_NS_LOOKUP: OpSchema(
        "ns_lookup",
        args=[("name", "str")],
        results=[("kind", "str"), ("space", "str"), ("metadata", "bytes")],
    ),
    OP_NS_LIST: OpSchema(
        "ns_list",
        args=[("kind", "str")],
        results=[("names", "strlist")],
    ),
    OP_PING: OpSchema(
        "ping",
        args=[("payload", "bytes")],
        results=[("payload", "bytes")],
    ),
    OP_BYE: OpSchema(
        "bye",
        args=[],
        results=[],
    ),
    OP_SET_REALTIME: OpSchema(
        "set_realtime",
        args=[("tick_period", "double"), ("tolerance", "double")],
        results=[],
    ),
    OP_GC_REPORT: OpSchema(
        "gc_report",
        args=[],
        results=[("sweeps", "u32"), ("items", "u32"), ("bytes", "hyper")],
    ),
    OP_INSPECT: OpSchema(
        "inspect",
        args=[],
        # The snapshot structure is open-ended, so it travels as a
        # codec-encoded value rather than fixed XDR fields.
        results=[("snapshot", "bytes")],
    ),
    OP_RESUME: OpSchema(
        "resume",
        # First (and only) operation on a reconnected transport: reclaim
        # the parked session named by HELLO's (session_id, token).  The
        # server answers with the session's address space and how many
        # container connections survived the outage.
        args=[("session_id", "str"), ("token", "str")],
        results=[("space", "str"), ("connections", "u32")],
    ),
    OP_PUT_BATCH: OpSchema(
        "put_batch",
        # Batch envelope: N complete, individually-encoded cast request
        # frames (each an OP_PUT) travelling as one wire frame and one
        # syscall.  Cast-only — a batch never expects a reply; each inner
        # frame is dispatched exactly as if it had arrived alone, so
        # ordering and dedup semantics are unchanged.
        args=[("frames", "frames")],
        results=[],
    ),
    OP_CONSUME_BATCH: OpSchema(
        "consume_batch",
        # Same envelope as put_batch but carrying OP_CONSUME /
        # OP_CONSUME_UNTIL casts.
        args=[("frames", "frames")],
        results=[],
    ),
    OP_STATS: OpSchema(
        "stats",
        # Live observability snapshot (metrics registry + per-container
        # occupancy/age + GC/reactor state) as UTF-8 JSON.  JSON rather
        # than XDR because the instrument set is open-ended and the
        # consumers are dashboards, not stubs.
        args=[],
        results=[("snapshot", "bytes")],
    ),
    OP_TRACE_DUMP: OpSchema(
        "trace_dump",
        # Drain the cluster's trace ring: newest ``max_events`` events
        # (0 = all) as UTF-8 JSON; ``clear`` empties the ring after the
        # read, making the dump a true drain.
        args=[("max_events", "u32"), ("clear", "bool")],
        results=[("events", "bytes")],
    ),
    OP_SHARD_MAP: OpSchema(
        "shard_map",
        # Shard-cluster control plane: which shard accepted this
        # connection, how many shards exist, and every shard's private
        # peer-door address (JSON ``{"0": [host, port], ...}``).  A
        # single-process server answers ``shard_id=0, shards=1`` so
        # clients need no special case.  Clients use this to place
        # containers on their own shard (see docs/SCALING.md).
        args=[],
        results=[("shard_id", "u32"), ("shards", "u32"),
                 ("peers", "bytes")],
    ),
    OP_NS_REFRESH: OpSchema(
        "ns_refresh",
        # Refresh one leased name-server binding without side effects.
        # Introduced for the shard control plane: a device's PING lands
        # on the shard that accepted its connection, but a leased name
        # it registered may live on the shard the ring assigned it —
        # the accepting shard forwards the refresh per name over its
        # peer link.  Useful to ordinary clients too.  ``refreshed`` is
        # False for unleased/unbound names (heartbeats race expiry by
        # design and must not error).
        args=[("name", "str")],
        results=[("refreshed", "bool")],
    ),
    OP_SPAN_DUMP: OpSchema(
        "span_dump",
        # Drain the cluster's provenance-span ring: newest ``max_spans``
        # spans (0 = all) plus the per-hop / per-channel e2e latency
        # histograms, as UTF-8 JSON; ``clear`` empties the recorder
        # after the read.  A sharded front shard folds every worker's
        # payload in (see repro/obs/aggregate.py merge_span_dumps).
        args=[("max_spans", "u32"), ("clear", "bool")],
        results=[("spans", "bytes")],
    ),
    OP_PROF_DUMP: OpSchema(
        "prof_dump",
        # Snapshot the continuous profiler's collapsed-stack sample
        # counts as UTF-8 JSON; ``clear`` resets the counts.  Merged
        # across shards like SPAN_DUMP; render with tools/flame.py.
        args=[("clear", "bool")],
        results=[("profile", "bytes")],
    ),
}

#: Diagnostic operations the surrogate serves on a dedicated thread,
#: bypassing the execution lanes entirely — a cluster whose app
#: operations are wedged must still answer "what is stuck?".
OBSERVER_OPS = frozenset({OP_STATS, OP_TRACE_DUMP, OP_SPAN_DUMP,
                          OP_PROF_DUMP})

#: Reserved args key carrying the optional trace-id envelope field out
#: of :func:`decode_request`.  Underscore-prefixed so it can never
#: collide with a schema field name.
TRACE_ID_KEY = "_trace_id"

#: Reserved args key carrying the optional origin-stamp envelope field
#: (the client-side monotonic put time, seconds) out of
#: :func:`decode_request`.  Same reservation rule as TRACE_ID_KEY.
ORIGIN_KEY = "_origin"

#: Cast opcodes the client coalescer may gather into a batch envelope,
#: mapped to the envelope opcode that carries them.
BATCHABLE: Dict[int, int] = {
    OP_PUT: OP_PUT_BATCH,
    OP_CONSUME: OP_CONSUME_BATCH,
    OP_CONSUME_UNTIL: OP_CONSUME_BATCH,
}

#: Inner opcodes each batch envelope is allowed to carry; the surrogate
#: refuses anything else (no nested batches, no smuggled sync ops).
BATCH_INNER_OPS: Dict[int, frozenset] = {
    OP_PUT_BATCH: frozenset({OP_PUT}),
    OP_CONSUME_BATCH: frozenset({OP_CONSUME, OP_CONSUME_UNTIL}),
}

#: The batch envelope opcodes themselves.
BATCH_OPS = frozenset(BATCH_INNER_OPS)

#: Operations safe to re-issue after a transport failure: executing them
#: twice is indistinguishable from once (consume of a missing/reclaimed
#: timestamp is legal, detach is idempotent, reads read).  PUT and GET
#: are *not* here because their safety depends on the container kind:
#: the client retries channel gets (pure reads) and channel puts
#: (absorbing ``DuplicateTimestampError`` on the retry — the timestamp
#: key makes the replay detectable), but never queue gets/puts (a queue
#: get dequeues; a queue put has no dedup key).  See docs/FAULTS.md for
#: the per-opcode delivery guarantees.
IDEMPOTENT_OPS = frozenset({
    OP_CONSUME,
    OP_CONSUME_UNTIL,
    OP_DETACH,
    OP_NS_LOOKUP,
    OP_NS_LIST,
    OP_PING,
    OP_SET_REALTIME,
    OP_GC_REPORT,
    OP_INSPECT,
    # STATS is a pure read.  TRACE_DUMP, SPAN_DUMP and PROF_DUMP are
    # deliberately absent: with ``clear`` set they drain their rings,
    # so a blind replay loses events.
    OP_STATS,
    OP_SHARD_MAP,  # pure read of static cluster topology
    OP_NS_REFRESH,  # refreshing twice equals refreshing once
})

_OPCODE_BY_NAME = {schema.name: code for code, schema in OP_SCHEMAS.items()}


def opcode_for(name: str) -> int:
    """Opcode for an operation name (tests and tools)."""
    return _OPCODE_BY_NAME[name]


# -- generic field packing ---------------------------------------------------


def _pack_fields(enc: XdrEncoder, specs: Sequence[_FieldSpec],
                 values: Dict[str, Any]) -> None:
    for field, kind in specs:
        try:
            value = values[field]
        except KeyError:
            raise RpcError(f"missing field {field!r}") from None
        if kind == "str":
            enc.pack_string(value)
        elif kind == "u32":
            enc.pack_uint(value)
        elif kind == "hyper":
            enc.pack_hyper(value)
        elif kind == "bool":
            enc.pack_bool(bool(value))
        elif kind == "double":
            enc.pack_double(float(value))
        elif kind == "bytes":
            enc.pack_opaque(value)
        elif kind == "strlist":
            enc.pack_array(list(value), enc.pack_string)
        elif kind == "frames":
            enc.pack_array(list(value),
                           lambda f: enc.pack_opaque(bytes(f)))
        else:  # pragma: no cover - schema typo guard
            raise RpcError(f"unknown field kind {kind!r}")


def _unpack_fields(dec: XdrDecoder, specs: Sequence[_FieldSpec],
                   bytes_as_view: bool = False) -> Dict[str, Any]:
    values: Dict[str, Any] = {}
    for field, kind in specs:
        if kind == "str":
            values[field] = dec.unpack_string()
        elif kind == "u32":
            values[field] = dec.unpack_uint()
        elif kind == "hyper":
            values[field] = dec.unpack_hyper()
        elif kind == "bool":
            values[field] = dec.unpack_bool()
        elif kind == "double":
            values[field] = dec.unpack_double()
        elif kind == "bytes":
            values[field] = (dec.unpack_opaque_view() if bytes_as_view
                             else dec.unpack_opaque())
        elif kind == "strlist":
            values[field] = dec.unpack_array(dec.unpack_string)
        elif kind == "frames":
            unpack = (dec.unpack_opaque_view if bytes_as_view
                      else dec.unpack_opaque)
            values[field] = dec.unpack_array(unpack)
        else:  # pragma: no cover
            raise RpcError(f"unknown field kind {kind!r}")
    return values


# -- compiled request stubs ----------------------------------------------------

_STRUCT_CODES = {"u32": "I", "hyper": "q", "bool": "I", "double": "d"}
_XDR_PAD = (b"", b"\x00\x00\x00", b"\x00\x00", b"\x00")  # by len & 3


def _compile_request_stub(opcode: int, schema: OpSchema):
    """Generate an rpcgen-style specialised encoder for one opcode.

    The generic :func:`_pack_fields` walk — a string-compare per field
    and a buffer-object write per primitive — dominates the client's
    cast hot path at fan-out scale.  A stub collapses the schema into
    one or two precompiled ``struct.pack`` calls plus payload slices,
    producing byte-identical frames (asserted against the generic
    packer in tests/runtime/test_ops.py).  Schemas with list-shaped
    fields keep the generic path; returns ``None`` for those.
    """
    fmt = ">II"
    vals = ["request_id", repr(opcode)]
    setup: List[str] = []
    parts: List[str] = []
    names: Dict[str, Any] = {"_join": b"".join, "_pad": _XDR_PAD}

    def close_segment() -> None:
        nonlocal fmt, vals
        if vals:
            name = f"_pack{len(names)}"
            names[name] = struct.Struct(fmt).pack
            parts.append(f"{name}({', '.join(vals)})")
        fmt, vals = ">", []

    for field, kind in schema.args:
        code = _STRUCT_CODES.get(kind)
        if code is not None:
            expr = f"a[{field!r}]"
            if kind == "bool":
                expr = f"(1 if {expr} else 0)"
            vals.append(expr)
            fmt += code
            continue
        if kind not in ("bytes", "str"):
            return None  # strlist/frames ride the generic packer
        var = f"_f{len(setup)}"
        if kind == "str":
            setup.append(f"{var} = a[{field!r}].encode('utf-8')")
        else:
            setup.append(f"{var} = a[{field!r}]")
        fmt += "I"
        vals.append(f"len({var})")
        close_segment()
        parts.append(var)
        parts.append(f"_pad[len({var}) & 3]")
    close_segment()
    body = "".join(f"    {line}\n" for line in setup)
    source = (f"def _stub(request_id, a):\n{body}"
              f"    return _join(({', '.join(parts)},))\n")
    exec(source, names)  # noqa: S102 - source derives from the schema table
    return names["_stub"]


_REQUEST_STUBS = {}
for _opcode, _schema in OP_SCHEMAS.items():
    _stub = _compile_request_stub(_opcode, _schema)
    if _stub is not None:
        _REQUEST_STUBS[_opcode] = _stub
del _opcode, _schema, _stub


# -- requests ------------------------------------------------------------------


def encode_request(request_id: int, opcode: int, args: Dict[str, Any],
                   trace_id: Optional[str] = None,
                   origin: float = 0.0) -> bytes:
    """Build a request frame.

    *trace_id*, when given, is appended after the schema args as an
    **optional trailing envelope field** (an XDR string).  *origin*,
    when non-zero, is the item's provenance stamp — the client-side
    monotonic put time in seconds — appended as a second trailing field
    (an XDR double) after the trace id; a frame carrying an origin but
    no trace id packs an empty trace-id string as placeholder so the
    fields stay positional.  Frames without either are byte-identical
    to the pre-envelope wire format, so the fields cost nothing unless
    tracing/spans are active and stay off the wire for untraced peers.
    """
    if not trace_id and not origin:
        stub = _REQUEST_STUBS.get(opcode)
        if stub is not None:
            try:
                return stub(request_id, args)
            except (KeyError, TypeError, AttributeError, struct.error):
                pass  # re-run generically for exact error semantics
    return _encode_request_generic(request_id, opcode, args, trace_id,
                                   origin)


def _encode_request_generic(request_id: int, opcode: int,
                            args: Dict[str, Any],
                            trace_id: Optional[str] = None,
                            origin: float = 0.0) -> bytes:
    schema = OP_SCHEMAS.get(opcode)
    if schema is None:
        raise RpcError(f"unknown opcode {opcode}")
    enc = XdrEncoder()
    enc.pack_uint(request_id)
    enc.pack_uint(opcode)
    _pack_fields(enc, schema.args, args)
    if trace_id or origin:
        enc.pack_string(trace_id or "")
    if origin:
        enc.pack_double(origin)
    return enc.getvalue()


def decode_request(frame: bytes,
                   payload_views: bool = False
                   ) -> Tuple[int, int, Dict[str, Any]]:
    """Parse a request frame into ``(request_id, opcode, args)``.

    With ``payload_views=True`` every ``bytes``/``frames`` field comes
    back as a zero-copy ``memoryview`` into *frame* — the server hot path
    uses this so an item payload is never copied between the socket
    buffer and the container.  Views are only valid while *frame* is.

    If the frame carries the optional trailing trace-id envelope field,
    it is delivered in *args* under :data:`TRACE_ID_KEY` (when
    non-empty — an empty string is the placeholder an origin-only frame
    packs); a second trailing origin-stamp field is delivered under
    :data:`ORIGIN_KEY`.  Old-format frames (no trailing fields) decode
    exactly as before.
    """
    dec = XdrDecoder(frame)
    request_id = dec.unpack_uint()
    opcode = dec.unpack_uint()
    schema = OP_SCHEMAS.get(opcode)
    if schema is None:
        raise DecodeError(f"unknown opcode {opcode} in request")
    args = _unpack_fields(dec, schema.args, bytes_as_view=payload_views)
    if dec.remaining:
        trace_id = dec.unpack_string()
        if trace_id:
            args[TRACE_ID_KEY] = trace_id
        if dec.remaining:
            args[ORIGIN_KEY] = dec.unpack_double()
    dec.done()
    return request_id, opcode, args


def encode_batch_parts(batch_opcode: int,
                       frames: Sequence[bytes]) -> List[bytes]:
    """Build the wire parts of a batch envelope **without joining**.

    Returns a list of buffer slices (header, then per-frame length
    prefix + the frame itself, already referenced rather than copied)
    suitable for :meth:`StreamTransport.send_frame_parts` — the whole
    batch leaves in one scatter/gather syscall.  The layout is byte-for-
    byte identical to ``encode_request(0, batch_opcode, {"frames": ...})``.
    """
    if batch_opcode not in BATCH_OPS:
        raise RpcError(f"opcode {batch_opcode} is not a batch op")
    enc = XdrEncoder()
    enc.pack_uint(CAST_REQUEST_ID)
    enc.pack_uint(batch_opcode)
    enc.pack_uint(len(frames))
    parts: List[bytes] = [enc.getvalue()]
    for frame in frames:
        length = len(frame)
        head = XdrEncoder()
        head.pack_uint(length)
        parts.append(head.getvalue())
        parts.append(frame)
        padding = (-length) % 4
        if padding:  # XDR frames are 4-aligned, so normally absent
            parts.append(b"\x00" * padding)
    return parts


# -- responses --------------------------------------------------------------------

#: A reclaim notification: (container name, timestamp).
Reclaim = Tuple[str, int]


def encode_ok_response(request_id: int, opcode: int,
                       results: Dict[str, Any],
                       reclaims: Sequence[Reclaim] = ()) -> bytes:
    """Build a success response frame for *opcode*."""
    schema = OP_SCHEMAS[opcode]
    enc = XdrEncoder()
    enc.pack_uint(request_id)
    enc.pack_uint(STATUS_OK)
    _pack_reclaims(enc, reclaims)
    _pack_fields(enc, schema.results, results)
    return enc.getvalue()


#: Below this, a ``bytes`` result field is copied into the header part
#: instead of getting its own iovec entry: for tiny payloads the copy is
#: cheaper than the extra scatter/gather bookkeeping.
_PARTS_MIN_BYTES = 256


def encode_ok_response_parts(request_id: int, opcode: int,
                             results: Dict[str, Any],
                             reclaims: Sequence[Reclaim] = ()) -> List[Any]:
    """Build a success response as wire **parts** instead of one frame.

    Byte-for-byte identical on the wire to :func:`encode_ok_response`,
    but large ``bytes`` result fields are *referenced* (appended as
    their own buffer, typically a ``memoryview`` of an item's cached
    encoding) rather than copied into the frame — the whole response
    leaves in one ``sendmsg`` via ``send_frame_parts``.  This is what
    lets the serialize-once fan-out cache stay zero-copy end to end:
    encode once on the first get, then every later consumer's response
    scatters the same pinned buffer.
    """
    schema = OP_SCHEMAS[opcode]
    enc = XdrEncoder()
    enc.pack_uint(request_id)
    enc.pack_uint(STATUS_OK)
    _pack_reclaims(enc, reclaims)
    parts: List[Any] = []
    for field, kind in schema.results:
        if kind == "bytes":
            try:
                value = results[field]
            except KeyError:
                raise RpcError(f"missing field {field!r}") from None
            length = len(value)
            if length >= _PARTS_MIN_BYTES:
                enc.pack_uint(length)
                parts.append(enc.getvalue())
                parts.append(value)  # referenced, not copied
                padding = (-length) % 4
                if padding:
                    parts.append(b"\x00" * padding)
                enc = XdrEncoder()
                continue
        _pack_fields(enc, [(field, kind)], results)
    tail = enc.getvalue()
    if tail:
        parts.append(tail)
    return parts  # never empty: the header words precede any flush


def encode_error_response(request_id: int, error_type: str, message: str,
                          reclaims: Sequence[Reclaim] = ()) -> bytes:
    """Build an error response frame."""
    enc = XdrEncoder()
    enc.pack_uint(request_id)
    enc.pack_uint(STATUS_ERROR)
    _pack_reclaims(enc, reclaims)
    enc.pack_string(error_type)
    enc.pack_string(message)
    return enc.getvalue()


def _pack_reclaims(enc: XdrEncoder, reclaims: Sequence[Reclaim]) -> None:
    enc.pack_uint(len(reclaims))
    for container, timestamp in reclaims:
        enc.pack_string(container)
        enc.pack_hyper(timestamp)


@dataclass(frozen=True)
class Response:
    """A decoded response frame."""

    request_id: int
    ok: bool
    reclaims: List[Reclaim]
    results: Dict[str, Any]
    error_type: str = ""
    error_message: str = ""


def decode_response(frame: bytes, opcode: int) -> Response:
    """Parse a response frame; the caller supplies the request's opcode so
    the result fields can be decoded by schema."""
    dec = XdrDecoder(frame)
    request_id = dec.unpack_uint()
    status = dec.unpack_uint()
    count = dec.unpack_uint()
    if count > dec.remaining:
        raise DecodeError(f"reclaim count {count} exceeds frame")
    reclaims = [
        (dec.unpack_string(), dec.unpack_hyper()) for _ in range(count)
    ]
    if status == STATUS_OK:
        results = _unpack_fields(dec, OP_SCHEMAS[opcode].results)
        dec.done()
        return Response(request_id, True, reclaims, results)
    if status == STATUS_ERROR:
        error_type = dec.unpack_string()
        message = dec.unpack_string()
        dec.done()
        return Response(request_id, False, reclaims, {},
                        error_type=error_type, error_message=message)
    raise DecodeError(f"unknown response status {status}")


def peek_request_id(frame: bytes) -> int:
    """Read only the request id (response routing on the client)."""
    return XdrDecoder(frame).unpack_uint()
