"""Multi-cluster federation.

The paper's first future-work item (§6): "we would like to extend the
D-Stampede system to support multiple heterogeneous clusters connected
to a plethora of end devices participating in the same D-Stampede
application" — the current system's limitation being "there can only be
one cluster involved in an application" (§3.3).

The federation design reuses the Octopus model compositionally: a
cluster reaches a peer cluster *as an end device of that peer* — a
:class:`ClusterBridge` is a :class:`~repro.client.client.StampedeClient`
connected to the peer's server, so every existing mechanism (surrogates,
wire ops, reclaim piggybacking, codec personalities, attention filters)
works across clusters unchanged.  Garbage collection stays local to the
container's home cluster, because a remote cluster's consumers are
ordinary connections held by its surrogate there.

Name resolution: each cluster keeps its own name server; a
:class:`FederatedRuntime` resolves unqualified names locally first, then
across peers (deterministically, in peer-name order).  Qualified names
``"cluster!container"`` pin the cluster explicitly.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.client.client import RemoteConnection, StampedeClient
from repro.core.connection import Connection, ConnectionMode
from repro.core.filters import AttentionFilter
from repro.errors import NameNotBoundError, StampedeError
from repro.runtime.runtime import IsolatedConnection, Runtime
from repro.runtime.server import StampedeServer
from repro.util.logging import get_logger

_log = get_logger("runtime.federation")

#: Separator for cluster-qualified container names.
QUALIFIER = "!"

AnyConnection = Union[Connection, IsolatedConnection, RemoteConnection]


def split_qualified(name: str) -> Tuple[Optional[str], str]:
    """``"west!video"`` -> ``("west", "video")``; unqualified -> ``(None,
    name)``."""
    if QUALIFIER in name:
        cluster, _, container = name.partition(QUALIFIER)
        if not cluster or not container:
            raise ValueError(f"malformed qualified name {name!r}")
        return cluster, container
    return None, name


class ClusterBridge:
    """This cluster's client-side link to one peer cluster."""

    def __init__(self, peer_name: str, host: str, port: int,
                 local_cluster: str, codec: str = "xdr",
                 heartbeat: Optional[float] = None) -> None:
        self.peer_name = peer_name
        self.client = StampedeClient(
            host, port,
            client_name=f"bridge:{local_cluster}->{peer_name}",
            codec=codec, heartbeat=heartbeat,
        )

    def has(self, container: str) -> bool:
        """Whether the peer's name server binds *container*."""
        try:
            self.client.ns_lookup(container)
            return True
        except StampedeError:
            return False

    def attach(self, container: str, mode: ConnectionMode,
               wait: Optional[float] = None,
               attention_filter: Optional[AttentionFilter] = None
               ) -> RemoteConnection:
        """Attach to *container* on the peer cluster."""
        return self.client.attach(container, mode, wait=wait,
                                  attention_filter=attention_filter)

    def create_channel(self, name: str,
                       capacity: Optional[int] = None) -> None:
        """Create a channel on the peer cluster."""
        self.client.create_channel(name, capacity=capacity)

    def create_queue(self, name: str, capacity: Optional[int] = None,
                     auto_consume: bool = False) -> None:
        """Create a queue on the peer cluster."""
        self.client.create_queue(name, capacity=capacity,
                                 auto_consume=auto_consume)

    def names(self, kind: str = "") -> List[str]:
        """Names bound on the peer, optionally filtered by kind."""
        return self.client.ns_list(kind)

    def close(self) -> None:
        """Leave the peer cluster cleanly."""
        self.client.close()


class FederatedRuntime:
    """One cluster of a multi-cluster application.

    Parameters
    ----------
    cluster_name:
        This cluster's name in the federation (used in qualified names
        and bridge identities).
    runtime:
        An existing :class:`Runtime`, or ``None`` to create one.
    serve:
        Start a TCP server so end devices *and peer clusters* can join.
    bridge_codec:
        Wire personality for outgoing bridges (peers may differ — the
        "heterogeneous clusters" of the future-work item).
    shards:
        Defaults to 1 (``DSTAMPEDE_SHARDS`` is *not* consulted): a
        federated cluster creates containers on its runtime object
        directly, which fork-sharding cannot support.  Pass
        ``shards=N`` explicitly only for a pure front-door head where
        all traffic joins over TCP (docs/SCALING.md).
    """

    def __init__(self, cluster_name: str,
                 runtime: Optional[Runtime] = None, serve: bool = True,
                 host: str = "127.0.0.1", port: int = 0,
                 device_spaces: Optional[List[str]] = None,
                 lease_timeout: Optional[float] = None,
                 bridge_codec: str = "xdr",
                 bridge_heartbeat: Optional[float] = None,
                 lanes: Optional[int] = None,
                 shards: Optional[int] = None) -> None:
        self.cluster_name = cluster_name
        self.runtime = runtime if runtime is not None else Runtime(
            name=cluster_name
        )
        self.bridge_codec = bridge_codec
        self.bridge_heartbeat = bridge_heartbeat
        self.server: Optional[StampedeServer] = None
        if serve:
            self.server = StampedeServer(
                self.runtime, host=host, port=port,
                device_spaces=device_spaces, lease_timeout=lease_timeout,
                lanes=lanes, shards=1 if shards is None else shards,
            ).start()
        self._bridges: Dict[str, ClusterBridge] = {}
        self._lock = threading.Lock()
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The TCP address peers and devices join through."""
        if self.server is None:
            raise RuntimeError(
                f"cluster {self.cluster_name!r} is not serving"
            )
        return self.server.address

    # -- federation management ----------------------------------------------------

    def connect_cluster(self, peer_name: str, host: str,
                        port: int) -> ClusterBridge:
        """Bridge to a peer cluster's server.

        :raises ValueError: duplicate or self peer name.
        """
        if peer_name == self.cluster_name:
            raise ValueError("a cluster cannot bridge to itself")
        with self._lock:
            if peer_name in self._bridges:
                raise ValueError(
                    f"already bridged to cluster {peer_name!r}"
                )
            bridge = ClusterBridge(
                peer_name, host, port, self.cluster_name,
                codec=self.bridge_codec, heartbeat=self.bridge_heartbeat,
            )
            self._bridges[peer_name] = bridge
        _log.info("cluster %r bridged to %r at %s:%d",
                  self.cluster_name, peer_name, host, port)
        return bridge

    def disconnect_cluster(self, peer_name: str) -> None:
        """Drop the bridge to *peer_name* (idempotent)."""
        with self._lock:
            bridge = self._bridges.pop(peer_name, None)
        if bridge is not None:
            bridge.close()

    def peers(self) -> List[str]:
        """Sorted names of the bridged peer clusters."""
        with self._lock:
            return sorted(self._bridges)

    def _bridge(self, peer_name: str) -> ClusterBridge:
        with self._lock:
            try:
                return self._bridges[peer_name]
            except KeyError:
                raise NameNotBoundError(
                    f"no bridge to cluster {peer_name!r}; "
                    f"peers: {sorted(self._bridges)}"
                ) from None

    # -- naming ---------------------------------------------------------------------

    def resolve(self, name: str) -> Tuple[Optional[str], str]:
        """Locate *name*: returns ``(cluster or None-for-local,
        container)``.

        Qualified names pin the cluster; unqualified names resolve
        locally first, then across peers in sorted order.

        :raises NameNotBoundError: nowhere bound.
        """
        cluster, container = split_qualified(name)
        if cluster is not None:
            if cluster == self.cluster_name:
                self.runtime.nameserver.lookup(container)
                return None, container
            if not self._bridge(cluster).has(container):
                raise NameNotBoundError(
                    f"{container!r} is not bound on cluster {cluster!r}"
                )
            return cluster, container
        if self.runtime.nameserver.contains(container):
            return None, container
        for peer_name in self.peers():
            if self._bridge(peer_name).has(container):
                return peer_name, container
        raise NameNotBoundError(
            f"{container!r} is not bound on this cluster or any of "
            f"{self.peers()}"
        )

    def federation_names(self, kind: str = "") -> Dict[str, List[str]]:
        """All names per cluster (diagnostics and discovery)."""
        listing = {
            self.cluster_name: [
                record.name
                for record in self.runtime.nameserver.list(
                    kind=kind or None
                )
            ]
        }
        for peer_name in self.peers():
            listing[peer_name] = self._bridge(peer_name).names(kind)
        return listing

    # -- containers -------------------------------------------------------------------

    def create_channel(self, name: str, space: Optional[str] = None,
                       capacity: Optional[int] = None):
        """Create a channel; a qualified name creates it on that peer."""
        cluster, container = split_qualified(name)
        if cluster is None or cluster == self.cluster_name:
            home = space if space is not None else self._default_space()
            return self.runtime.create_channel(container, home,
                                               capacity=capacity)
        self._bridge(cluster).create_channel(container, capacity=capacity)
        return None

    def create_queue(self, name: str, space: Optional[str] = None,
                     capacity: Optional[int] = None,
                     auto_consume: bool = False):
        """Create a queue on the peer cluster."""
        cluster, container = split_qualified(name)
        if cluster is None or cluster == self.cluster_name:
            home = space if space is not None else self._default_space()
            return self.runtime.create_queue(
                container, home, capacity=capacity,
                auto_consume=auto_consume,
            )
        self._bridge(cluster).create_queue(container, capacity=capacity,
                                           auto_consume=auto_consume)
        return None

    def _default_space(self) -> str:
        spaces = self.runtime.address_spaces()
        if not spaces:
            return self.runtime.create_address_space("main").name
        return spaces[0].name

    # -- attach -----------------------------------------------------------------------

    def attach(self, name: str, mode: ConnectionMode,
               from_space: Optional[str] = None,
               wait: Optional[float] = None,
               attention_filter: Optional[AttentionFilter] = None,
               owner: str = "") -> AnyConnection:
        """Connect to a container anywhere in the federation.

        Local containers yield local (or isolated) connections; remote
        ones yield :class:`RemoteConnection` through the peer bridge —
        the same uniform API either way.

        ``wait`` polls the whole federation until the name appears.
        """
        deadline = None if wait is None else time.monotonic() + wait
        while True:
            try:
                cluster, container = self.resolve(name)
                break
            except NameNotBoundError:
                if deadline is None or time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)
        if cluster is None:
            predicate = (attention_filter.predicate()
                         if attention_filter is not None else None)
            return self.runtime.attach(
                container, mode, from_space=from_space, owner=owner,
                attention_filter=predicate,
            )
        return self._bridge(cluster).attach(
            container, mode, attention_filter=attention_filter,
        )

    # -- lifecycle ---------------------------------------------------------------------

    def spawn(self, space: str, target: Callable, *args, **kwargs):
        """Spawn a thread in one of this cluster's address spaces."""
        return self.runtime.spawn(space, target, *args, **kwargs)

    def shutdown(self) -> None:
        """Close every bridge, the server, and the local runtime."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            bridges = list(self._bridges.values())
            self._bridges.clear()
        for bridge in bridges:
            bridge.close()
        if self.server is not None:
            self.server.close()
        self.runtime.shutdown()

    def __enter__(self) -> "FederatedRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"<FederatedRuntime {self.cluster_name!r} "
                f"peers={self.peers()}>")
