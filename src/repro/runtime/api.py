"""The uniform API facade.

The paper stresses that "all the parts have access to the same set of
abstractions via a uniform set of API calls".  :class:`StampedeApp`
bundles the pieces a typical application touches — runtime, server, name
server — behind one object, so the §4 recipe ("the server program creates
multiple address spaces ... spawns a listener thread ... the mixer thread
does the following ...") is a handful of lines.

For full control, use :class:`~repro.runtime.runtime.Runtime`,
:class:`~repro.runtime.server.StampedeServer`, and
:class:`~repro.client.client.StampedeClient` directly; this module adds
no functionality, only convenience.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.channel import Channel
from repro.core.connection import ConnectionMode
from repro.core.squeue import SQueue
from repro.core.threads import StampedeThread
from repro.runtime.runtime import Runtime
from repro.runtime.server import StampedeServer


class StampedeApp:
    """A cluster application: runtime + optional TCP front door.

    Parameters
    ----------
    name:
        Application name.
    address_spaces:
        Names of the cluster address spaces to create up front (the
        ``N_1 ... N_k, N_M`` of §4); more can be added later.
    serve:
        When true, start a :class:`StampedeServer` so end devices can
        join over TCP.
    host, port, device_spaces, lease_timeout, lanes, shards:
        Forwarded to the server when *serve* is true.  ``shards``
        defaults to 1 here (``DSTAMPEDE_SHARDS`` is *not* consulted):
        an application holds the runtime object and may attach to it
        from in-process threads, which fork-sharding cannot support.
        Pass ``shards=N`` explicitly only when every producer and
        consumer joins through the TCP front door (docs/SCALING.md).
    """

    def __init__(self, name: str = "dstampede-app",
                 address_spaces: Optional[List[str]] = None,
                 serve: bool = False, host: str = "127.0.0.1",
                 port: int = 0,
                 device_spaces: Optional[List[str]] = None,
                 lease_timeout: Optional[float] = None,
                 gc_interval: float = 0.05,
                 default_codec: str = "xdr",
                 lanes: Optional[int] = None,
                 shards: Optional[int] = None) -> None:
        self.runtime = Runtime(name=name, gc_interval=gc_interval,
                               default_codec=default_codec)
        for space in address_spaces or []:
            self.runtime.create_address_space(space)
        self.server: Optional[StampedeServer] = None
        if serve:
            self.server = StampedeServer(
                self.runtime, host=host, port=port,
                device_spaces=device_spaces, lease_timeout=lease_timeout,
                lanes=lanes, shards=1 if shards is None else shards,
            ).start()

    # -- delegation ------------------------------------------------------------

    @property
    def nameserver(self):
        """The runtime's name server."""
        return self.runtime.nameserver

    @property
    def address(self) -> Tuple[str, int]:
        """The TCP address end devices join through.

        :raises RuntimeError: the app was created with ``serve=False``.
        """
        if self.server is None:
            raise RuntimeError("application is not serving end devices")
        return self.server.address

    def create_address_space(self, name: str):
        """Create a protection domain."""
        return self.runtime.create_address_space(name)

    def create_channel(self, name: str, space: str,
                       capacity: Optional[int] = None) -> Channel:
        """Create a channel homed in *space*."""
        return self.runtime.create_channel(name, space, capacity=capacity)

    def create_queue(self, name: str, space: str,
                     capacity: Optional[int] = None,
                     auto_consume: bool = False) -> SQueue:
        """Create a queue homed in *space*."""
        return self.runtime.create_queue(
            name, space, capacity=capacity, auto_consume=auto_consume
        )

    def attach(self, container: str, mode: ConnectionMode,
               from_space: Optional[str] = None,
               wait: Optional[float] = None, **kwargs: Any):
        """Connect to a named container (see Runtime.attach)."""
        return self.runtime.attach(
            container, mode, from_space=from_space, wait=wait, **kwargs
        )

    def spawn(self, space: str, target: Callable[..., Any], *args: Any,
              name: Optional[str] = None, **kwargs: Any) -> StampedeThread:
        """Spawn a thread homed in *space*."""
        return self.runtime.spawn(space, target, *args, name=name,
                                  **kwargs)

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the server (if any) and the runtime."""
        if self.server is not None:
            self.server.close()
        self.runtime.shutdown()

    def __enter__(self) -> "StampedeApp":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
