"""Shared machinery for channels and queues.

Both container kinds are system-wide named objects that threads attach to
via connections.  This module centralises the parts the paper treats
uniformly: connection management, handler registration, capacity/flow
control, destruction, and statistics.  The access discipline (random by
timestamp vs FIFO) lives in the concrete subclasses.

Thread-safety: one re-entrant lock per container guards all state; two
condition variables signal "item arrived" (blocking gets) and "space freed"
(blocking puts on bounded containers).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.handlers import (
    Deserializer,
    HandlerSet,
    ReclaimHandler,
    Serializer,
)
from repro.errors import ConnectionClosedError, ContainerDestroyedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import Connection, ConnectionMode

#: Containers and connections get globally unique small integer ids.
_container_ids = itertools.count(1)
_connection_ids = itertools.count(1)


def next_container_id() -> int:
    """Allocate a globally unique container id."""
    return next(_container_ids)


def next_connection_id() -> int:
    """Allocate a globally unique connection id."""
    return next(_connection_ids)


@dataclass(frozen=True)
class ContainerStats:
    """Point-in-time statistics snapshot for a container."""

    puts: int
    gets: int
    consumes: int
    reclaimed: int
    bytes_in: int
    live_items: int
    live_bytes: int
    peak_items: int
    peak_bytes: int
    input_connections: int
    output_connections: int


class Container:
    """Base class for :class:`~repro.core.channel.Channel` and
    :class:`~repro.core.squeue.SQueue`.

    Parameters
    ----------
    name:
        System-wide unique name (uniqueness is enforced by the name server,
        not here; anonymous containers pass ``None`` and get a generated
        name from their id).
    capacity:
        Maximum number of live items, or ``None`` for unbounded.  Bounded
        containers apply back-pressure: ``put`` blocks until the garbage
        collector frees a slot.
    """

    KIND = "container"

    def __init__(self, name: Optional[str] = None,
                 capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.container_id = next_container_id()
        self.name = name if name else f"{self.KIND}-{self.container_id}"
        self.capacity = capacity
        self.handlers = HandlerSet()
        self._lock = threading.RLock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._destroyed = False
        self._connections: Dict[int, "Connection"] = {}
        # Incremental-GC state: a container is *dirty* when an event that
        # can create garbage has happened since its last sweep (consume
        # that left work behind, interest-floor advance, filter change,
        # connection detach, a put no attached consumer can want).  The
        # collector daemon only visits dirty containers; a clean container
        # costs it nothing.  Subclasses call ``_mark_gc_dirty`` from every
        # such event — that is the dirty-marking contract.
        self._gc_dirty = False
        self._gc_notifier: Optional[Callable[["Container"], None]] = None
        self._gc_runs = 0
        # statistics
        self._puts = 0
        self._gets = 0
        self._consumes = 0
        self._reclaimed = 0
        self._bytes_in = 0
        self._peak_items = 0
        self._peak_bytes = 0

    # -- connection management ------------------------------------------------

    def attach(self, mode: "ConnectionMode", owner: str = "",
               attention_filter: Optional[Callable] = None) -> "Connection":
        """Attach a new connection in *mode*; returns the connection handle.

        A thread may hold any number of connections to any number of
        containers — that is the "selective attention" mechanism of §3.1.
        """
        from repro.core.connection import Connection  # cycle guard

        with self._lock:
            self._check_alive()
            conn = Connection(
                container=self,
                mode=mode,
                owner=owner,
                attention_filter=attention_filter,
            )
            self._connections[conn.connection_id] = conn
            self._on_attach(conn)
            return conn

    def update_attention_filter(self, connection: "Connection",
                                attention_filter) -> None:
        """Change a connection's selective-attention predicate in place.

        Selective attention is dynamic in the paper's model (a thread
        "dynamically choose[s] the set of channels and queues it wants
        to perform I/O on" and filters by timestamp); swapping the
        predicate re-evaluates the world: items the connection no longer
        wants stop vetoing collection (one sweep runs immediately), and
        blocked marker-getters wake to re-scan with the new predicate.
        """
        with self._lock:
            self._check_connection(connection)
            connection.attention_filter = attention_filter
            self._on_attention_changed(connection)
            self.collect_garbage()
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def detach(self, connection: "Connection") -> None:
        """Detach *connection*; its consumption state stops constraining GC."""
        with self._lock:
            removed = self._connections.pop(connection.connection_id, None)
            if removed is not None:
                connection._mark_detached()
                self._on_detach(connection)
                # A departing consumer may unblock reclamation.
                self._not_full.notify_all()
                self._not_empty.notify_all()

    def connections(self) -> List["Connection"]:
        """Snapshot of every attached connection."""
        with self._lock:
            return list(self._connections.values())

    def input_connections(self) -> List["Connection"]:
        """Connections attached for input (IN or INOUT)."""
        from repro.core.connection import ConnectionMode

        with self._lock:
            return [
                c for c in self._connections.values()
                if c.mode in (ConnectionMode.IN, ConnectionMode.INOUT)
            ]

    def output_connections(self) -> List["Connection"]:
        """Connections attached for output (OUT or INOUT)."""
        from repro.core.connection import ConnectionMode

        with self._lock:
            return [
                c for c in self._connections.values()
                if c.mode in (ConnectionMode.OUT, ConnectionMode.INOUT)
            ]

    # -- handlers --------------------------------------------------------------

    def set_serializer(self, serializer: Serializer,
                       deserializer: Deserializer) -> None:
        """Install the marshal/unmarshal pair used when items cross an
        address-space boundary (§3.1 "Handler Functions")."""
        with self._lock:
            self.handlers.serializer = serializer
            self.handlers.deserializer = deserializer

    def add_reclaim_handler(self, handler: ReclaimHandler) -> None:
        """Register a callback run when an item is garbage-collected."""
        with self._lock:
            self.handlers.add_reclaim_handler(handler)

    def remove_reclaim_handler(self, handler: ReclaimHandler) -> None:
        """Unregister a previously added reclaim handler."""
        with self._lock:
            self.handlers.remove_reclaim_handler(handler)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def destroyed(self) -> bool:
        """Whether destroy() has run."""
        return self._destroyed

    def destroy(self) -> None:
        """Destroy the container: wake all blocked threads with an error and
        detach every connection."""
        with self._lock:
            if self._destroyed:
                return
            self._destroyed = True
            for conn in list(self._connections.values()):
                conn._mark_detached()
            self._connections.clear()
            # Wake the collector so it notices the corpse and unregisters.
            self._mark_gc_dirty()
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def _check_alive(self) -> None:
        if self._destroyed:
            raise ContainerDestroyedError(
                f"{self.KIND} {self.name!r} has been destroyed"
            )

    def _check_connection(self, connection: "Connection") -> None:
        self._check_alive()
        if connection.detached:
            raise ConnectionClosedError(
                f"connection {connection.connection_id} to "
                f"{self.name!r} is detached"
            )

    # -- statistics -------------------------------------------------------------

    def _record_put(self, size: int) -> None:
        self._puts += 1
        self._bytes_in += size
        live_items, live_bytes = self._live_footprint()
        self._peak_items = max(self._peak_items, live_items)
        self._peak_bytes = max(self._peak_bytes, live_bytes)

    def _live_footprint(self) -> "tuple[int, int]":
        """(live item count, live byte count) — subclass supplies storage."""
        raise NotImplementedError

    def oldest_live_age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds the oldest unreclaimed item has been held, or None.

        The stall watchdog's primary per-container signal; the concrete
        containers override it with their storage's notion of "oldest".
        """
        return None

    def blocking_connections(self) -> "List[dict]":
        """Connections currently preventing the oldest item's reclaim.

        Overridden by the concrete containers; the base container holds
        no items, so nothing can block.
        """
        return []

    def stats(self) -> ContainerStats:
        """Point-in-time statistics snapshot."""
        with self._lock:
            live_items, live_bytes = self._live_footprint()
            return ContainerStats(
                puts=self._puts,
                gets=self._gets,
                consumes=self._consumes,
                reclaimed=self._reclaimed,
                bytes_in=self._bytes_in,
                live_items=live_items,
                live_bytes=live_bytes,
                peak_items=self._peak_items,
                peak_bytes=self._peak_bytes,
                input_connections=len(self.input_connections()),
                output_connections=len(self.output_connections()),
            )

    # -- GC hook -----------------------------------------------------------------

    @property
    def gc_dirty(self) -> bool:
        """Whether a garbage-creating event happened since the last sweep.

        The :class:`~repro.core.gc.GarbageCollector` daemon skips clean
        containers entirely, so a quiescent container costs zero sweep
        work per collection cycle.
        """
        return self._gc_dirty

    @property
    def gc_runs(self) -> int:
        """Number of times a sweep actually examined this container."""
        return self._gc_runs

    def _mark_gc_dirty(self) -> None:
        """Flag this container for the next incremental collection.

        Called (under the container lock) by every event that can create
        garbage which is not reclaimed inline.  Notifies the registered
        collector so the daemon wakes promptly instead of waiting out its
        polling interval — this is what makes collection event-driven.
        """
        if self._gc_dirty:
            return
        self._gc_dirty = True
        notifier = self._gc_notifier
        if notifier is not None:
            notifier(self)

    def _set_gc_notifier(
        self, notifier: Optional[Callable[["Container"], None]]
    ) -> None:
        """Install (or clear) the collector's dirty-notification callback."""
        with self._lock:
            self._gc_notifier = notifier
            if notifier is not None and self._gc_dirty:
                notifier(self)

    # Subclass event hooks, all invoked under the container lock.  The
    # base implementations conservatively mark the container dirty; the
    # concrete containers refine them (e.g. to invalidate marker-scan
    # hints or request a full sweep).

    def _on_attach(self, connection: "Connection") -> None:
        """A connection attached (new input vetoes arrive *via* events)."""

    def _on_detach(self, connection: "Connection") -> None:
        """A connection detached: its vetoes vanish, anything may be dead."""
        self._mark_gc_dirty()

    def _on_attention_changed(self, connection: "Connection") -> None:
        """A filter changed: previously wanted items may now be garbage."""
        self._mark_gc_dirty()

    def collect_garbage(self) -> "tuple[int, int]":
        """Reclaim every item no attached input connection still needs.

        Returns ``(items_reclaimed, bytes_reclaimed)``.  Called by the
        per-address-space :class:`~repro.core.gc.GarbageCollector` daemon,
        and safe to call directly (tests do).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} id={self.container_id} "
            f"name={self.name!r}>"
        )
