"""Timestamps and virtual-time markers.

A timestamp in D-Stampede is an application-defined index — e.g. the frame
number of a video stream — not a wall-clock reading (the paper is explicit:
"the timestamp associated with an item is merely an indexing system ... and
does not in itself have any direct connection with real time").

Timestamps are non-negative integers.  Two *virtual-time markers*,
:data:`NEWEST` and :data:`OLDEST`, may be passed to ``get`` calls to request
the most recent / least recent item currently present instead of a specific
index.  Markers are singletons and compare unequal to every integer.
"""

from __future__ import annotations

from typing import Union

from repro.errors import BadTimestampError

#: Highest representable timestamp.  63-bit so it round-trips through the
#: signed 64-bit fields of both wire formats.
MAX_TIMESTAMP = 2**63 - 1

Timestamp = int


class _Marker:
    """A named virtual-time singleton (NEWEST / OLDEST)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return f"<VirtualTime {self._name}>"

    def __reduce__(self):
        # Pickle back to the module-level singleton so identity checks
        # (``ts is NEWEST``) survive crossing address spaces.
        return (_marker_by_name, (self._name,))

    @property
    def name(self) -> str:
        """The marker's name (NEWEST or OLDEST)."""
        return self._name


#: Request the item with the greatest timestamp currently in the container.
NEWEST = _Marker("NEWEST")

#: Request the item with the smallest timestamp currently in the container.
OLDEST = _Marker("OLDEST")

_MARKERS = {"NEWEST": NEWEST, "OLDEST": OLDEST}


def _marker_by_name(name: str) -> _Marker:
    return _MARKERS[name]


#: A concrete timestamp or one of the two markers.
VirtualTime = Union[Timestamp, _Marker]


def is_marker(value: object) -> bool:
    """True if *value* is one of the virtual-time markers."""
    return value is NEWEST or value is OLDEST


def is_valid_timestamp(value: object) -> bool:
    """True if *value* is a concrete, in-range timestamp.

    Booleans are rejected even though ``bool`` subclasses ``int``: a ``True``
    timestamp is almost certainly a bug at the call site.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        return False
    return 0 <= value <= MAX_TIMESTAMP


def validate_timestamp(value: object) -> Timestamp:
    """Return *value* if it is a valid timestamp, else raise.

    :raises BadTimestampError: if *value* is not a non-negative integer
        within the 63-bit range.
    """
    if not is_valid_timestamp(value):
        raise BadTimestampError(f"invalid timestamp: {value!r}")
    return value  # type: ignore[return-value]


def validate_virtual_time(value: object) -> VirtualTime:
    """Return *value* if it is a timestamp or marker, else raise."""
    if is_marker(value):
        return value  # type: ignore[return-value]
    return validate_timestamp(value)
