"""Connections: the attachment of a thread to a channel or queue.

A thread "(dynamically) 'connects' to a channel (or a queue) for input
and/or output.  Once connected, a thread can do I/O (in the form get/put
items)" (§3.1).  The connection is also the unit of garbage-collection
bookkeeping: each input connection carries

* an **interest floor** — a virtual time below which this connection
  promises never to ask for items again (advanced by
  :meth:`Connection.consume_until`), and
* per-item **consume marks** (set by :meth:`Connection.consume`).

The distributed garbage collector reclaims an item once every attached
input connection has either consumed it or advanced its floor past it.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from repro.core.container import next_connection_id
from repro.core.timestamps import Timestamp, VirtualTime
from repro.errors import ConnectionModeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.container import Container


class ConnectionMode(enum.Enum):
    """Direction of a connection."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def can_get(self) -> bool:
        """Whether this mode permits get/consume."""
        return self in (ConnectionMode.IN, ConnectionMode.INOUT)

    @property
    def can_put(self) -> bool:
        """Whether this mode permits put."""
        return self in (ConnectionMode.OUT, ConnectionMode.INOUT)


class Connection:
    """Handle for thread I/O on one container.

    Instances are created by :meth:`Container.attach`, never directly.
    All I/O methods delegate to the container, which owns the locking.
    """

    __slots__ = (
        "connection_id",
        "container",
        "mode",
        "owner",
        "attention_filter",
        "_interest_floor",
        "_detached",
    )

    def __init__(
        self,
        container: "Container",
        mode: ConnectionMode,
        owner: str = "",
        attention_filter: Optional[Callable[[Timestamp, Any], bool]] = None,
    ) -> None:
        self.connection_id = next_connection_id()
        self.container = container
        self.mode = mode
        self.owner = owner
        #: Optional selective-attention predicate ``(ts, value) -> bool``.
        #: Items failing the predicate are invisible to marker/FIFO gets on
        #: this connection and never constrain garbage collection for it.
        self.attention_filter = attention_filter
        self._interest_floor: Timestamp = 0
        self._detached = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def detached(self) -> bool:
        """Whether this connection has been detached."""
        return self._detached

    def _mark_detached(self) -> None:
        self._detached = True

    def detach(self) -> None:
        """Detach from the container.  Idempotent."""
        if not self._detached:
            self.container.detach(self)

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # -- GC bookkeeping --------------------------------------------------------

    @property
    def interest_floor(self) -> Timestamp:
        """Lowest timestamp this connection may still ask for."""
        return self._interest_floor

    def _advance_floor(self, timestamp: Timestamp) -> None:
        """Monotonically raise the interest floor (floors never move back)."""
        if timestamp > self._interest_floor:
            self._interest_floor = timestamp

    def set_attention_filter(
        self, attention_filter: Optional[Callable[[Timestamp, Any], bool]]
    ) -> None:
        """Swap this connection's selective-attention predicate.

        Takes effect atomically with respect to container operations;
        see :meth:`~repro.core.container.Container.update_attention_filter`.
        """
        self._require_get()
        self.container.update_attention_filter(self, attention_filter)

    def wants(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether this input connection may still request this item."""
        if self._detached:
            return False
        if timestamp < self._interest_floor:
            return False
        if self.attention_filter is not None:
            try:
                return bool(self.attention_filter(timestamp, value))
            except Exception:  # noqa: BLE001 - user predicate must not wedge GC
                return True  # conservatively keep the item
        return True

    def gc_view(self) -> Tuple[int, Timestamp, Optional[Callable]]:
        """Flat ``(connection_id, interest_floor, attention_filter)`` snapshot.

        Sweeps iterate many items against few connections; taking one view
        per connection per sweep (instead of calling :meth:`wants` per
        item) keeps the inner loop to set lookups and integer compares.
        The snapshot is consistent because both the sweep and every floor /
        filter mutation run under the container lock.
        """
        return (
            self.connection_id,
            self._interest_floor,
            self.attention_filter,
        )

    # -- I/O delegation ---------------------------------------------------------

    def put(self, timestamp: Timestamp, value: Any,
            size: Optional[int] = None, block: bool = True,
            timeout: Optional[float] = None) -> None:
        """Insert *value* at *timestamp* (see container ``put`` semantics)."""
        self._require_put()
        self.container.put(  # type: ignore[attr-defined]
            self, timestamp, value, size=size, block=block, timeout=timeout
        )

    def get(self, timestamp: VirtualTime, block: bool = True,
            timeout: Optional[float] = None) -> Tuple[Timestamp, Any]:
        """Fetch an item; returns ``(actual timestamp, value)``."""
        self._require_get()
        return self.container.get(  # type: ignore[attr-defined]
            self, timestamp, block=block, timeout=timeout
        )

    def get_item(self, timestamp: VirtualTime, block: bool = True,
                 timeout: Optional[float] = None) -> Any:
        """Fetch the raw :class:`~repro.core.item.Item` record.

        Boundary layers use this to reach the item's serialize-once
        encoding cache; only containers that expose ``get_item``
        (channels — queues dequeue, so there is no fan-out to cache)
        support it.  Application code should use :meth:`get`.
        """
        self._require_get()
        return self.container.get_item(  # type: ignore[attr-defined]
            self, timestamp, block=block, timeout=timeout
        )

    def consume(self, timestamp: Timestamp) -> None:
        """Declare the item at *timestamp* garbage as far as this connection
        is concerned (§3.1 "Garbage Collection")."""
        self._require_get()
        self.container.consume(self, timestamp)  # type: ignore[attr-defined]

    def consume_until(self, timestamp: Timestamp) -> None:
        """Declare every item with timestamp strictly below *timestamp*
        garbage for this connection, and promise never to request below it.

        This advances the interest floor, the mechanism that lets the
        collector reclaim items the consumer skipped over (e.g. dropped
        video frames).
        """
        self._require_get()
        self.container.consume_until(  # type: ignore[attr-defined]
            self, timestamp
        )

    # -- mode guards --------------------------------------------------------------

    def _require_get(self) -> None:
        if not self.mode.can_get:
            raise ConnectionModeError(
                f"connection {self.connection_id} to "
                f"{self.container.name!r} is output-only"
            )

    def _require_put(self) -> None:
        if not self.mode.can_put:
            raise ConnectionModeError(
                f"connection {self.connection_id} to "
                f"{self.container.name!r} is input-only"
            )

    def __repr__(self) -> str:
        return (
            f"<Connection id={self.connection_id} mode={self.mode.value} "
            f"container={self.container.name!r} owner={self.owner!r}>"
        )
