"""Handler functions attached to channels and queues.

The paper (§3.1, §3.2.4) lets applications associate user-defined functions
with a container:

* a **serializer** / **deserializer** pair, invoked when an item crosses an
  address-space (or machine) boundary, so arbitrary user data structures can
  travel; and
* a **reclaim handler**, invoked when the runtime determines an item is
  garbage, so user-space buffers tied to the item can be freed (or, for end
  devices, so the client library can be told to release its copy).

Handlers are optional.  With no serializer configured, containers fall back
to the codec of the transport crossing the boundary (see
:mod:`repro.marshal`); with no reclaim handler, reclamation just drops the
item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.timestamps import Timestamp

#: ``serializer(value) -> bytes``
Serializer = Callable[[Any], bytes]
#: ``deserializer(data) -> value``
Deserializer = Callable[[bytes], Any]
#: ``reclaim(timestamp, value) -> None``
ReclaimHandler = Callable[[Timestamp, Any], None]
#: ``filter(timestamp, value) -> bool`` — selective attention (future-work
#: extension): input connections can refuse items before they are surfaced.
AttentionFilter = Callable[[Timestamp, Any], bool]


@dataclass
class HandlerSet:
    """The bundle of user handlers attached to one container.

    Reclaim handlers accumulate: every registered handler runs (in
    registration order) when an item is reclaimed, mirroring the original
    system where each end device's surrogate installed its own generic
    handler on the same channel.
    """

    serializer: Optional[Serializer] = None
    deserializer: Optional[Deserializer] = None
    reclaim_handlers: List[ReclaimHandler] = field(default_factory=list)

    def add_reclaim_handler(self, handler: ReclaimHandler) -> None:
        """Register a reclamation callback."""
        self.reclaim_handlers.append(handler)

    def remove_reclaim_handler(self, handler: ReclaimHandler) -> None:
        """Unregister a reclamation callback."""
        self.reclaim_handlers.remove(handler)

    def outbound(
        self, codec: Any
    ) -> "tuple[str, Serializer, Deserializer]":
        """The ``(cache_key, serialize, deserialize)`` triple for sending
        an item across a boundary.

        The user's serializer/deserializer pair wins when both are
        installed; otherwise the transport *codec* is the fallback
        (§3.2.4).  The key names the encoding identity for the item-level
        serialize-once cache: user handlers are keyed by object identity
        (two containers with different serializers must not share bytes),
        codecs by personality name (``xdr`` and ``jdr`` encode
        differently).
        """
        serializer = self.serializer
        deserializer = self.deserializer
        if serializer is not None and deserializer is not None:
            return f"handler:{id(serializer)}", serializer, deserializer
        return f"codec:{codec.name}", codec.encode, codec.decode

    def run_reclaim(self, timestamp: Timestamp, value: Any) -> List[Exception]:
        """Invoke every reclaim handler; collect (not raise) their errors.

        GC runs concurrently with the application on a daemon thread; a
        throwing user handler must not kill collection for every other item,
        so failures are returned for the GC to log.
        """
        errors: List[Exception] = []
        for handler in list(self.reclaim_handlers):
            try:
                handler(timestamp, value)
            except Exception as exc:  # noqa: BLE001 - isolate user code
                errors.append(exc)
        return errors
