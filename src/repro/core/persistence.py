"""Container checkpoint and restore.

The paper defers failure handling: "a third area of future research is
dealing with failures, both towards developing a computational model as
well as efficient runtime support for the model" (§6), and names high
availability a requirement "outside the scope of this paper" (§2).

This module supplies the storage half of that story: a container's
durable state — its identity, GC watermark, and live items — serializes
to a self-describing byte blob and restores into a fresh container.
Restore semantics follow recovery convention:

* **channels** restore exactly: live items keep their timestamps, the
  watermark and holes are preserved so single-use timestamp rules
  survive the crash;
* **queues** restore with *redelivery*: items that had been dequeued but
  not consumed go back on the queue (their consumer may have died mid
  item — at-least-once is the only safe default);
* connections are *not* checkpointed: consumers re-attach on recovery,
  exactly as end devices rejoin through the name server.

Item payloads travel through the container's serializer handler when one
is installed, else through the named codec — the same rule as crossing
an address space, because a checkpoint is a crossing into the future.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.channel import Channel
from repro.core.item import Item, ItemState
from repro.core.squeue import SQueue
from repro.errors import DecodeError, EncodeError
from repro.marshal import get_codec
from repro.marshal.xdr import XdrDecoder, XdrEncoder

_MAGIC = b"CKPT"
_VERSION = 1

AnyContainer = Union[Channel, SQueue]


def checkpoint(container: AnyContainer, codec: str = "xdr") -> bytes:
    """Serialize *container*'s durable state.

    :raises EncodeError: an item payload is outside the codec domain and
        no serializer handler is installed.
    """
    if isinstance(container, Channel):
        return _checkpoint_channel(container, codec)
    if isinstance(container, SQueue):
        return _checkpoint_queue(container, codec)
    raise EncodeError(
        f"cannot checkpoint a {type(container).__name__}"
    )


def restore(data: bytes, name: Optional[str] = None,
            codec: str = "xdr",
            deserializer=None) -> AnyContainer:
    """Rebuild a container from :func:`checkpoint` output.

    *name* overrides the stored name (restoring next to a survivor).
    *deserializer* must be supplied when the original container used a
    serializer handler — handlers are code and cannot ride inside the
    checkpoint.

    :raises DecodeError: malformed or version-skewed checkpoint.
    """
    dec = XdrDecoder(data)
    magic = dec.unpack_opaque_fixed(4)
    if magic != _MAGIC:
        raise DecodeError(f"bad checkpoint magic {magic!r}")
    version = dec.unpack_uint()
    if version != _VERSION:
        raise DecodeError(f"unsupported checkpoint version {version}")
    kind = dec.unpack_string()
    if kind == Channel.KIND:
        return _restore_channel(dec, name, codec, deserializer)
    if kind == SQueue.KIND:
        return _restore_queue(dec, name, codec, deserializer)
    raise DecodeError(f"unknown container kind {kind!r} in checkpoint")


# ---------------------------------------------------------------------------
# Encoding helpers
# ---------------------------------------------------------------------------


def _header(container: AnyContainer) -> XdrEncoder:
    enc = XdrEncoder()
    enc.pack_opaque_fixed(_MAGIC)
    enc.pack_uint(_VERSION)
    enc.pack_string(container.KIND)
    enc.pack_string(container.name)
    enc.pack_bool(container.capacity is not None)
    enc.pack_uint(container.capacity or 0)
    return enc


def _encode_payload(container: AnyContainer, codec_name: str,
                    value) -> bytes:
    serializer = container.handlers.serializer
    if serializer is not None:
        return serializer(value)
    return get_codec(codec_name).encode(value)


def _decode_payload(codec_name: str, deserializer, data: bytes):
    if deserializer is not None:
        return deserializer(data)
    return get_codec(codec_name).decode(data)


def _pack_item(enc: XdrEncoder, container: AnyContainer,
               codec_name: str, item: Item) -> None:
    enc.pack_hyper(item.timestamp)
    enc.pack_opaque(_encode_payload(container, codec_name, item.value))


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------


def _checkpoint_channel(channel: Channel, codec_name: str) -> bytes:
    with channel._lock:
        enc = _header(channel)
        enc.pack_string(channel.overflow)
        enc.pack_hyper(channel._watermark)
        enc.pack_array(sorted(channel._holes), enc.pack_hyper)
        live = [item for item in channel._items.values()
                if item.state is ItemState.LIVE]
        enc.pack_uint(len(live))
        for item in sorted(live, key=lambda i: i.timestamp):
            _pack_item(enc, channel, codec_name, item)
        return enc.getvalue()


def _restore_channel(dec: XdrDecoder, name: Optional[str],
                     codec_name: str, deserializer=None) -> Channel:
    stored_name = dec.unpack_string()
    bounded = dec.unpack_bool()
    capacity = dec.unpack_uint()
    overflow = dec.unpack_string()
    watermark = dec.unpack_hyper()
    holes = dec.unpack_array(dec.unpack_hyper)
    channel = Channel(
        name=name or stored_name,
        capacity=capacity if bounded else None,
        overflow=overflow,
    )
    channel._watermark = watermark
    channel._holes = set(holes)
    count = dec.unpack_uint()
    if count > dec.remaining:
        raise DecodeError(f"checkpoint claims {count} items but only "
                          f"{dec.remaining} bytes remain")
    for _ in range(count):
        timestamp = dec.unpack_hyper()
        payload = dec.unpack_opaque()
        value = _decode_payload(codec_name, deserializer, payload)
        channel._insert_item(Item(timestamp, value, size=len(payload)))
    dec.done()
    return channel


# ---------------------------------------------------------------------------
# Queues
# ---------------------------------------------------------------------------


def _checkpoint_queue(queue: SQueue, codec_name: str) -> bytes:
    with queue._lock:
        enc = _header(queue)
        enc.pack_bool(queue.auto_consume)
        # Redelivery: pending (dequeued, unconsumed) items are written
        # *ahead of* the queued ones — they were earlier in FIFO order.
        pending = queue._pending_items()
        queued = list(queue._fifo)
        enc.pack_uint(len(pending) + len(queued))
        for item in pending + queued:
            _pack_item(enc, queue, codec_name, item)
        return enc.getvalue()


def _restore_queue(dec: XdrDecoder, name: Optional[str],
                   codec_name: str, deserializer=None) -> SQueue:
    stored_name = dec.unpack_string()
    bounded = dec.unpack_bool()
    capacity = dec.unpack_uint()
    auto_consume = dec.unpack_bool()
    queue = SQueue(
        name=name or stored_name,
        capacity=capacity if bounded else None,
        auto_consume=auto_consume,
    )
    count = dec.unpack_uint()
    if count > dec.remaining:
        raise DecodeError(f"checkpoint claims {count} items but only "
                          f"{dec.remaining} bytes remain")
    for _ in range(count):
        timestamp = dec.unpack_hyper()
        payload = dec.unpack_opaque()
        value = _decode_payload(codec_name, deserializer, payload)
        queue._restore_item(Item(timestamp, value, size=len(payload)))
    dec.done()
    return queue
