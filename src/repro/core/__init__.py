"""Space-time memory: the paper's primary contribution.

Channels (random access by timestamp) and queues (FIFO access) hold
time-sequenced items shared by threads.  Connections mediate all I/O and
carry the per-thread consumption state that drives the distributed garbage
collector.
"""

from repro.core.timestamps import (
    NEWEST,
    OLDEST,
    Timestamp,
    VirtualTime,
    is_valid_timestamp,
    validate_timestamp,
)
from repro.core.item import Item, ItemState
from repro.core.handlers import HandlerSet
from repro.core.filters import (
    AllOf,
    AnyOf,
    AttentionFilter,
    FieldEquals,
    NotF,
    SizeAtMost,
    TsModulo,
    TsRange,
    filter_from_spec,
)
from repro.core.channel import Channel
from repro.core.squeue import SQueue
from repro.core.persistence import checkpoint, restore
from repro.core.connection import Connection, ConnectionMode
from repro.core.gc import GarbageCollector, GcReport
from repro.core.threads import StampedeThread, spawn

__all__ = [
    "AllOf",
    "AnyOf",
    "AttentionFilter",
    "Channel",
    "FieldEquals",
    "NotF",
    "SizeAtMost",
    "TsModulo",
    "TsRange",
    "checkpoint",
    "filter_from_spec",
    "restore",
    "Connection",
    "ConnectionMode",
    "GarbageCollector",
    "GcReport",
    "HandlerSet",
    "Item",
    "ItemState",
    "NEWEST",
    "OLDEST",
    "SQueue",
    "StampedeThread",
    "Timestamp",
    "VirtualTime",
    "is_valid_timestamp",
    "spawn",
    "validate_timestamp",
]
