"""Items: the unit of data stored in channels and queues.

An item is an application-defined chunk of streaming data (a video frame,
an audio buffer, a tracker result) tagged with a timestamp.  The container
tracks, per item, which input connections have consumed it; the garbage
collector reclaims an item once every relevant consumer is done with it.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Set

from repro.core.timestamps import Timestamp


class ItemState(enum.Enum):
    """Lifecycle of an item inside a container."""

    #: Present and visible to ``get``.
    LIVE = "live"
    #: Determined garbage; reclamation handler may still be pending.
    GARBAGE = "garbage"
    #: Fully reclaimed (space released, handler invoked).
    RECLAIMED = "reclaimed"


class Item:
    """A timestamped value plus its consumption bookkeeping.

    Items are created by the container on ``put`` and are internal to the
    space-time memory layer; application code sees only ``(timestamp, value)``
    pairs.  The attributes are documented because the GC and the remote
    surrogate machinery manipulate them directly.

    The ``size`` is the serialized size in bytes when known (items that
    crossed an address-space boundary), otherwise an estimate supplied by
    the producer; it feeds the memory accounting reported by
    :class:`~repro.core.gc.GarbageCollector`.
    """

    __slots__ = (
        "timestamp",
        "value",
        "size",
        "state",
        "consumed_by",
        "dequeued_by",
        "put_time",
        "trace_id",
    )

    def __init__(
        self,
        timestamp: Timestamp,
        value: Any,
        size: Optional[int] = None,
        put_time: float = 0.0,
        trace_id: Optional[str] = None,
    ) -> None:
        self.timestamp = timestamp
        self.value = value
        self.size = size if size is not None else _estimate_size(value)
        self.state = ItemState.LIVE
        #: Connection ids of input connections that consumed this item.
        self.consumed_by: Set[int] = set()
        #: For queues: the connection id that dequeued the item, if any.
        self.dequeued_by: Optional[int] = None
        #: Wall/virtual time of the put, for latency accounting.
        self.put_time = put_time
        #: Trace id of the logical put that created the item, if tracing
        #: was active; lets the GC's reclaim event join the same trace.
        self.trace_id = trace_id

    # Consumption marks are only ever mutated under the owning container's
    # lock, and ``set`` membership reads are atomic under the GIL, so the
    # item needs no lock of its own — scans over thousands of items would
    # otherwise pay a lock acquisition per item per check.

    def mark_consumed(self, connection_id: int) -> None:
        """Record that *connection_id* consumed this item."""
        self.consumed_by.add(connection_id)

    def is_consumed_by(self, connection_id: int) -> bool:
        """Whether *connection_id* has consumed this item."""
        return connection_id in self.consumed_by

    def __repr__(self) -> str:
        return (
            f"<Item ts={self.timestamp} size={self.size} "
            f"state={self.state.value} consumers={len(self.consumed_by)}>"
        )


def _estimate_size(value: Any) -> int:
    """Best-effort byte-size estimate for memory accounting.

    Exact for bytes-like values (the dominant case: media frames); a
    conservative constant for arbitrary objects whose true footprint is
    unknown until serialization.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (list, tuple)):
        return sum(_estimate_size(v) for v in value) + 8 * len(value)
    if isinstance(value, dict):
        return sum(
            _estimate_size(k) + _estimate_size(v) for k, v in value.items()
        )
    return 64
