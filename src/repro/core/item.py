"""Items: the unit of data stored in channels and queues.

An item is an application-defined chunk of streaming data (a video frame,
an audio buffer, a tracker result) tagged with a timestamp.  The container
tracks, per item, which input connections have consumed it; the garbage
collector reclaims an item once every relevant consumer is done with it.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional, Set

from repro.core.timestamps import Timestamp
from repro.obs.metrics import GLOBAL_METRICS as _metrics

# Serialize-once fan-out accounting: how often a wire- or boundary-bound
# get reused a pinned encoding vs. ran the serializer.
_CACHE_HITS = _metrics.counter("core.encode_cache.hits")
_CACHE_MISSES = _metrics.counter("core.encode_cache.misses")


class ItemState(enum.Enum):
    """Lifecycle of an item inside a container."""

    #: Present and visible to ``get``.
    LIVE = "live"
    #: Determined garbage; reclamation handler may still be pending.
    GARBAGE = "garbage"
    #: Fully reclaimed (space released, handler invoked).
    RECLAIMED = "reclaimed"


class Item:
    """A timestamped value plus its consumption bookkeeping.

    Items are created by the container on ``put`` and are internal to the
    space-time memory layer; application code sees only ``(timestamp, value)``
    pairs.  The attributes are documented because the GC and the remote
    surrogate machinery manipulate them directly.

    The ``size`` is the serialized size in bytes when known (items that
    crossed an address-space boundary), otherwise an estimate supplied by
    the producer; it feeds the memory accounting reported by
    :class:`~repro.core.gc.GarbageCollector`.
    """

    __slots__ = (
        "timestamp",
        "value",
        "size",
        "state",
        "consumed_by",
        "dequeued_by",
        "put_time",
        "origin_time",
        "trace_id",
        "wire_cache",
    )

    def __init__(
        self,
        timestamp: Timestamp,
        value: Any,
        size: Optional[int] = None,
        put_time: float = 0.0,
        origin_time: float = 0.0,
        trace_id: Optional[str] = None,
    ) -> None:
        self.timestamp = timestamp
        self.value = value
        self.size = size if size is not None else _estimate_size(value)
        self.state = ItemState.LIVE
        #: Connection ids of input connections that consumed this item.
        self.consumed_by: Set[int] = set()
        #: For queues: the connection id that dequeued the item, if any.
        self.dequeued_by: Optional[int] = None
        #: Wall/virtual time of the put, for latency accounting.
        self.put_time = put_time
        #: Provenance stamp: the *client-side* monotonic put time that
        #: rode the wire envelope, when the item arrived with one
        #: (0.0 for local/unstamped puts).  Feeds the end-to-end
        #: information-latency spans (see repro.obs.spans).
        self.origin_time = origin_time
        #: Trace id of the logical put that created the item, if tracing
        #: was active; lets the GC's reclaim event join the same trace.
        self.trace_id = trace_id
        #: Serialize-once fan-out cache: encoding key -> encoded bytes,
        #: populated lazily by the first boundary-bound get (see
        #: :meth:`encoded_payload`), dropped by the GC with the item.
        self.wire_cache: Optional[Dict[str, bytes]] = None

    # Consumption marks are only ever mutated under the owning container's
    # lock, and ``set`` membership reads are atomic under the GIL, so the
    # item needs no lock of its own — scans over thousands of items would
    # otherwise pay a lock acquisition per item per check.

    def encoded_payload(
        self, key: str, encode: Callable[[Any], bytes]
    ) -> "tuple[bytes, bool]":
        """The item's serialized form under *key*; ``(data, was_hit)``.

        The §3.2.4 serializer runs **once per item per encoding**, not
        once per consumer: the first boundary-bound get pays the encode
        and pins the bytes here; every later consumer of the fan-out
        (and every re-get by a marker reader) reuses the pinned buffer.
        *key* names the encoding (a codec personality or a user
        serializer handler), so consumers speaking different formats
        never see each other's bytes.

        Deliberately lock-free: racing first readers may both encode and
        one write wins — a lost cache entry, never a wrong one, since
        item values are immutable once put.  Nothing is pinned on
        reclaimed items (the GC already dropped the cache; caching here
        would resurrect it).
        """
        cache = self.wire_cache
        if cache is not None:
            data = cache.get(key)
            if data is not None:
                if _metrics.enabled:
                    _CACHE_HITS.value += 1
                return data, True
        data = encode(self.value)
        if _metrics.enabled:
            _CACHE_MISSES.value += 1
        if self.state is ItemState.LIVE:
            if cache is None:
                cache = self.wire_cache = {}
            cache[key] = data
        return data, False

    def drop_wire_cache(self) -> None:
        """Release any pinned encodings (GC reclaim calls this so the
        cache's lifetime is exactly the item's)."""
        self.wire_cache = None

    def mark_consumed(self, connection_id: int) -> None:
        """Record that *connection_id* consumed this item."""
        self.consumed_by.add(connection_id)

    def is_consumed_by(self, connection_id: int) -> bool:
        """Whether *connection_id* has consumed this item."""
        return connection_id in self.consumed_by

    def __repr__(self) -> str:
        return (
            f"<Item ts={self.timestamp} size={self.size} "
            f"state={self.state.value} consumers={len(self.consumed_by)}>"
        )


def _estimate_size(value: Any) -> int:
    """Best-effort byte-size estimate for memory accounting.

    Exact for bytes-like values (the dominant case: media frames); a
    conservative constant for arbitrary objects whose true footprint is
    unknown until serialization.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (list, tuple)):
        return sum(_estimate_size(v) for v in value) + 8 * len(value)
    if isinstance(value, dict):
        return sum(
            _estimate_size(k) + _estimate_size(v) for k, v in value.items()
        )
    return 64
