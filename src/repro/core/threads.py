"""Stampede threads.

"Stampede threads are POSIX-like and can be created in different
protection domains (address spaces) for memory isolation purposes" (§3.1).
Python threads stand in for POSIX threads; protection domains are modelled
by :class:`~repro.runtime.address_space.AddressSpace`, whose spawn API
produces these wrappers tagged with their home space.

The wrapper adds what a distributed runtime needs beyond
:class:`threading.Thread`: exception capture (a worker dying must surface
at ``join``, not vanish into stderr), a result slot, and a uniform naming
scheme used in logs and the name server.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Optional, Tuple

from repro.errors import ThreadError

_thread_ids = itertools.count(1)


class StampedeThread:
    """A joinable thread with captured result/exception.

    Parameters
    ----------
    target:
        The callable to run.
    args, kwargs:
        Passed through to *target*.
    name:
        Human-readable name; auto-generated when omitted.
    address_space:
        Name of the owning address space ("" for free-standing threads).
    daemon:
        Daemonise the underlying OS thread (default true: Stampede threads
        serve continuous applications and die with the runtime).
    """

    def __init__(
        self,
        target: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        name: Optional[str] = None,
        address_space: str = "",
        daemon: bool = True,
    ) -> None:
        self.thread_id = next(_thread_ids)
        self.name = name if name else f"sthread-{self.thread_id}"
        self.address_space = address_space
        self._target = target
        self._args = args
        self._kwargs = kwargs or {}
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=daemon
        )
        self._started = False

    def _run(self) -> None:
        try:
            self._result = self._target(*self._args, **self._kwargs)
        except BaseException as exc:  # noqa: BLE001 - captured for join()
            self._exception = exc

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "StampedeThread":
        """Start the underlying OS thread; returns self."""
        if self._started:
            raise ThreadError(f"thread {self.name!r} already started")
        self._started = True
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> Any:
        """Join and return the target's result.

        :raises ThreadError: the thread was never started, is still alive
            after *timeout*, or its target raised (the original exception
            is chained as ``__cause__``).
        """
        if not self._started:
            raise ThreadError(f"thread {self.name!r} was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ThreadError(
                f"thread {self.name!r} did not finish within {timeout}s"
            )
        if self._exception is not None:
            raise ThreadError(
                f"thread {self.name!r} raised "
                f"{type(self._exception).__name__}: {self._exception}"
            ) from self._exception
        return self._result

    @property
    def alive(self) -> bool:
        """Whether the thread is currently running."""
        return self._thread.is_alive()

    @property
    def failed(self) -> bool:
        """True once the target has raised (thread finished abnormally)."""
        return self._exception is not None

    @property
    def exception(self) -> Optional[BaseException]:
        """The captured exception, if the target raised."""
        return self._exception

    def __repr__(self) -> str:
        state = "alive" if self.alive else ("new" if not self._started
                                            else "done")
        return (
            f"<StampedeThread {self.name!r} space={self.address_space!r} "
            f"{state}>"
        )


def spawn(target: Callable[..., Any], *args: Any,
          name: Optional[str] = None, address_space: str = "",
          **kwargs: Any) -> StampedeThread:
    """Create *and start* a :class:`StampedeThread` running ``target(*args,
    **kwargs)`` — the one-liner used throughout the examples."""
    thread = StampedeThread(
        target, args=args, kwargs=kwargs, name=name,
        address_space=address_space,
    )
    return thread.start()
