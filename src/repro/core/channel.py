"""Channels: timestamp-indexed shared containers for stream data.

"While the channel allows random access by a thread for items of interest
(based on the timestamp value associated with an item), a queue ... allows
FIFO access" (§3.1).  A channel therefore behaves like a sparse array
indexed by timestamp:

* ``put(ts, value)`` — insert; each timestamp may be written exactly once
  over the channel's lifetime (re-putting a live *or already reclaimed*
  timestamp is an error, because a consumer that saw the first value must
  never observe a different one at the same index);
* ``get(ts)`` — random access; blocks until an item with that timestamp
  arrives.  ``get(NEWEST)`` / ``get(OLDEST)`` fetch the extremal live item
  this connection still cares about (not below its interest floor, not
  already consumed by it, passing its attention filter);
* ``consume(ts)`` / ``consume_until(ts)`` — per-connection garbage
  declarations feeding the distributed collector.

Bounded channels exert back-pressure: ``put`` blocks until collection
frees a slot, which is the "efficient management and recycling of memory
buffers" requirement (§2, item 7).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.connection import Connection
from repro.core.container import Container
from repro.core.item import Item, ItemState
from repro.core.timestamps import (
    NEWEST,
    OLDEST,
    Timestamp,
    VirtualTime,
    is_marker,
    validate_timestamp,
)
from repro.util import trace as tracepoints
from repro.util.trace import trace
from repro.errors import (
    BadTimestampError,
    ChannelFullError,
    DuplicateTimestampError,
    ItemGarbageCollectedError,
    ItemNotFoundError,
)


class Channel(Container):
    """A space-time memory channel.

    Parameters mirror :class:`~repro.core.container.Container`, plus:

    overflow:
        Behaviour of ``put`` on a *bounded* channel that is full:

        * ``"block"`` (default) — wait for the collector to free a slot,
          the classic back-pressure of §2 item 7;
        * ``"drop_oldest"`` — evict the oldest live item (running its
          reclaim handlers) to admit the new one: latest-value semantics
          for live media, where a stalled consumer should cost freshness,
          never liveness.  Evictions are counted in ``stats`` via the
          ``reclaimed`` counter and :attr:`evictions`.

    The channel is purely local; distribution is layered on top by the
    runtime (remote threads reach a channel through their surrogate,
    which holds an ordinary local connection on their behalf).
    """

    KIND = "channel"

    OVERFLOW_BLOCK = "block"
    OVERFLOW_DROP_OLDEST = "drop_oldest"

    def __init__(self, name: Optional[str] = None,
                 capacity: Optional[int] = None,
                 overflow: str = OVERFLOW_BLOCK) -> None:
        if overflow not in (self.OVERFLOW_BLOCK,
                            self.OVERFLOW_DROP_OLDEST):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        super().__init__(name=name, capacity=capacity)
        self.overflow = overflow
        self.evictions = 0
        self._items: Dict[Timestamp, Item] = {}
        #: Highest timestamp W such that every ts <= W is reclaimed (or can
        #: never be put again).  Only reclamation advances it.
        self._watermark: Timestamp = -1  # type: ignore[assignment]
        #: Reclaimed timestamps above the watermark (holes from out-of-order
        #: consumption); folded into the watermark as they become contiguous.
        self._holes: Set[Timestamp] = set()

    # -- put ------------------------------------------------------------------

    def put(self, connection: Connection, timestamp: Timestamp, value: Any,
            size: Optional[int] = None, block: bool = True,
            timeout: Optional[float] = None) -> None:
        """Insert *value* at *timestamp* on behalf of *connection*.

        :raises DuplicateTimestampError: the timestamp holds a live item.
        :raises BadTimestampError: the timestamp was already reclaimed.
        :raises ChannelFullError: bounded blocking channel full and
            ``block=False`` (or the timeout expired).
        """
        validate_timestamp(timestamp)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            self._check_put_timestamp(timestamp)
            while self.capacity is not None and len(self._items) >= self.capacity:
                if self.overflow == self.OVERFLOW_DROP_OLDEST:
                    self._evict_oldest()
                    continue
                if not block:
                    raise ChannelFullError(
                        f"channel {self.name!r} is full "
                        f"({self.capacity} items)"
                    )
                if not self._wait(self._not_full, deadline):
                    raise ChannelFullError(
                        f"timed out waiting for space in channel {self.name!r}"
                    )
                self._check_connection(connection)
                self._check_put_timestamp(timestamp)
            item = Item(timestamp, value, size=size,
                        put_time=time.monotonic())
            self._items[timestamp] = item
            self._record_put(item.size)
            trace(tracepoints.PUT, self.name, ts=timestamp,
                  size=item.size)
            self._not_empty.notify_all()

    def _evict_oldest(self) -> None:
        """Drop-oldest overflow: reclaim the lowest live timestamp.

        Caller holds the lock and has verified the channel is full (so
        at least one live item exists).
        """
        oldest = min(
            (item for item in self._items.values()
             if item.state is ItemState.LIVE),
            key=lambda item: item.timestamp,
        )
        self.evictions += 1
        self._reclaim(oldest)

    def _check_put_timestamp(self, timestamp: Timestamp) -> None:
        if timestamp in self._items:
            raise DuplicateTimestampError(
                f"channel {self.name!r} already holds timestamp {timestamp}"
            )
        if timestamp <= self._watermark or timestamp in self._holes:
            raise BadTimestampError(
                f"timestamp {timestamp} in channel {self.name!r} was "
                f"already garbage-collected; timestamps are single-use"
            )

    # -- get ------------------------------------------------------------------

    def get(self, connection: Connection, timestamp: VirtualTime,
            block: bool = True,
            timeout: Optional[float] = None) -> Tuple[Timestamp, Any]:
        """Fetch the item at *timestamp* (or at a virtual-time marker).

        Returns ``(actual timestamp, value)`` — for markers the actual
        timestamp tells the caller *which* item it received, which is what
        enables temporal correlation across channels.

        :raises ItemGarbageCollectedError: the timestamp was reclaimed.
        :raises BadTimestampError: the connection's interest floor is
            already above the requested timestamp.
        :raises ItemNotFoundError: nothing available and ``block=False``
            (or the timeout expired).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            if is_marker(timestamp):
                return self._get_marker(connection, timestamp, block, deadline)
            validate_timestamp(timestamp)
            if timestamp < connection.interest_floor:
                raise BadTimestampError(
                    f"connection {connection.connection_id} promised not to "
                    f"request below {connection.interest_floor}, asked for "
                    f"{timestamp}"
                )
            while True:
                if timestamp <= self._watermark or timestamp in self._holes:
                    raise ItemGarbageCollectedError(
                        f"timestamp {timestamp} in channel {self.name!r} "
                        f"was garbage-collected"
                    )
                item = self._items.get(timestamp)
                if item is not None and item.state is ItemState.LIVE:
                    self._gets += 1
                    return item.timestamp, item.value
                if not block:
                    raise ItemNotFoundError(
                        f"no item at timestamp {timestamp} in channel "
                        f"{self.name!r}"
                    )
                if not self._wait(self._not_empty, deadline):
                    raise ItemNotFoundError(
                        f"timed out waiting for timestamp {timestamp} in "
                        f"channel {self.name!r}"
                    )
                self._check_connection(connection)

    def _get_marker(self, connection: Connection, marker: VirtualTime,
                    block: bool, deadline: Optional[float]
                    ) -> Tuple[Timestamp, Any]:
        pick_newest = marker is NEWEST
        while True:
            best: Optional[Item] = None
            for item in self._items.values():
                if item.state is not ItemState.LIVE:
                    continue
                if item.is_consumed_by(connection.connection_id):
                    continue
                if not connection.wants(item.timestamp, item.value):
                    continue
                if best is None:
                    best = item
                elif pick_newest and item.timestamp > best.timestamp:
                    best = item
                elif not pick_newest and item.timestamp < best.timestamp:
                    best = item
            if best is not None:
                self._gets += 1
                return best.timestamp, best.value
            if not block:
                raise ItemNotFoundError(
                    f"no live item for {marker!r} in channel {self.name!r}"
                )
            if not self._wait(self._not_empty, deadline):
                raise ItemNotFoundError(
                    f"timed out waiting for {marker!r} in channel "
                    f"{self.name!r}"
                )
            self._check_connection(connection)

    # -- consume / GC interface -------------------------------------------------

    def consume(self, connection: Connection, timestamp: Timestamp) -> None:
        """Mark the item at *timestamp* garbage for this connection.

        Consuming a timestamp that holds no item is legal (the consumer may
        be running ahead of the producer after a marker get on another
        channel); the mark simply has no effect then.
        """
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            item = self._items.get(timestamp)
            if item is None:
                return
            item.mark_consumed(connection.connection_id)
            self._maybe_reclaim(item)

    def consume_until(self, connection: Connection,
                      timestamp: Timestamp) -> None:
        """Raise this connection's interest floor to *timestamp* and sweep."""
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            connection._advance_floor(timestamp)
            self._sweep()

    def collect_garbage(self) -> Tuple[int, int]:
        """Sweep: reclaim every fully-dead item."""
        with self._lock:
            return self._sweep()

    def _sweep(self) -> Tuple[int, int]:
        """Reclaim every fully-dead item.  Caller holds the lock."""
        items = 0
        bytes_ = 0
        for item in list(self._items.values()):
            if item.state is ItemState.LIVE and self._is_dead(item):
                self._reclaim(item)
                items += 1
                bytes_ += item.size
        if items:
            self._not_full.notify_all()
        return items, bytes_

    def _maybe_reclaim(self, item: Item) -> None:
        if item.state is ItemState.LIVE and self._is_dead(item):
            self._reclaim(item)
            self._not_full.notify_all()

    def _is_dead(self, item: Item) -> bool:
        """An item is dead once every attached input connection is done with
        it — consumed it, floored past it, or filtered it out — and at least
        one input connection exists to have expressed that disinterest."""
        inputs = self.input_connections()
        if not inputs:
            return False
        for conn in inputs:
            if item.is_consumed_by(conn.connection_id):
                continue
            if not conn.wants(item.timestamp, item.value):
                continue
            return False  # this consumer may still want the item
        return True

    def _reclaim(self, item: Item) -> None:
        item.state = ItemState.GARBAGE
        del self._items[item.timestamp]
        self._record_hole(item.timestamp)
        self._reclaimed += 1
        trace(tracepoints.RECLAIM, self.name, ts=item.timestamp,
              size=item.size)
        errors = self.handlers.run_reclaim(item.timestamp, item.value)
        item.state = ItemState.RECLAIMED
        if errors:
            from repro.util.logging import get_logger

            log = get_logger("core.channel")
            for exc in errors:
                log.warning(
                    "reclaim handler for %s ts=%d raised: %r",
                    self.name, item.timestamp, exc,
                )

    def _record_hole(self, timestamp: Timestamp) -> None:
        self._holes.add(timestamp)
        while (self._watermark + 1) in self._holes:
            self._watermark += 1
            self._holes.discard(self._watermark)

    # -- introspection ------------------------------------------------------------

    def live_timestamps(self) -> "list[Timestamp]":
        """Sorted timestamps of live items (diagnostics and tests)."""
        with self._lock:
            return sorted(
                ts for ts, item in self._items.items()
                if item.state is ItemState.LIVE
            )

    @property
    def oldest_live(self) -> Optional[Timestamp]:
        """Smallest live timestamp, or None when empty."""
        with self._lock:
            live = [ts for ts, i in self._items.items()
                    if i.state is ItemState.LIVE]
            return min(live) if live else None

    @property
    def newest_live(self) -> Optional[Timestamp]:
        """Largest live timestamp, or None when empty."""
        with self._lock:
            live = [ts for ts, i in self._items.items()
                    if i.state is ItemState.LIVE]
            return max(live) if live else None

    def _live_footprint(self) -> Tuple[int, int]:
        live = [i for i in self._items.values()
                if i.state is ItemState.LIVE]
        return len(live), sum(i.size for i in live)

    # -- internals -------------------------------------------------------------------

    def _wait(self, condition: "Any", deadline: Optional[float]) -> bool:
        """Wait on *condition*; False means the deadline passed."""
        if deadline is None:
            condition.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return condition.wait(remaining)
