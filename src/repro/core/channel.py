"""Channels: timestamp-indexed shared containers for stream data.

"While the channel allows random access by a thread for items of interest
(based on the timestamp value associated with an item), a queue ... allows
FIFO access" (§3.1).  A channel therefore behaves like a sparse array
indexed by timestamp:

* ``put(ts, value)`` — insert; each timestamp may be written exactly once
  over the channel's lifetime (re-putting a live *or already reclaimed*
  timestamp is an error, because a consumer that saw the first value must
  never observe a different one at the same index);
* ``get(ts)`` — random access; blocks until an item with that timestamp
  arrives.  ``get(NEWEST)`` / ``get(OLDEST)`` fetch the extremal live item
  this connection still cares about (not below its interest floor, not
  already consumed by it, passing its attention filter);
* ``consume(ts)`` / ``consume_until(ts)`` — per-connection garbage
  declarations feeding the distributed collector.

Bounded channels exert back-pressure: ``put`` blocks until collection
frees a slot, which is the "efficient management and recycling of memory
buffers" requirement (§2, item 7).

Performance structure (see docs/API.md "Performance notes"):

* ``_live_index`` — a bisect-maintained sorted list of live timestamps.
  Extremal reads (``oldest_live``/``newest_live``, drop-oldest eviction)
  are O(1); inserts and removals are an O(log n) search plus a C-level
  ``memmove``.
* Marker gets scan the index directionally and remember, per connection,
  how far they got (``_hint_low``/``_hint_high``), so repeated
  ``get(NEWEST)``/``get(OLDEST)`` calls never rescan items the connection
  already consumed, floored past, or filtered out.
* Reclamation is incremental: garbage-creating events record *candidate*
  timestamps (bounded set) and mark the channel dirty; a sweep visits only
  the candidates against one flat snapshot of the input connections,
  instead of re-checking every item against every connection.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right, insort
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.connection import Connection
from repro.core.container import Container
from repro.core.item import Item, ItemState
from repro.core.timestamps import (
    NEWEST,
    OLDEST,
    Timestamp,
    VirtualTime,
    is_marker,
    validate_timestamp,
)
from repro.obs.metrics import GLOBAL_METRICS as _metrics
from repro.obs import spans as _spanmod
from repro.util import trace as tracepoints
from repro.util.trace import trace
from repro.errors import (
    BadTimestampError,
    ChannelFullError,
    DuplicateTimestampError,
    ItemGarbageCollectedError,
    ItemNotFoundError,
)

#: Above this many pending dead-candidates a sweep costs as much as a full
#: scan anyway, so the set stays bounded by collapsing to one.
_MAX_DEAD_CANDIDATES = 1024

# Hot-path probes: a sampled latency histogram each.  One mask test per
# operation against the op counter the container already maintains —
# the probe's mask is -1 while disabled, so the same test covers the
# on/off state with no separate enabled check (no extra per-op store
# either: probe.tick advances by sample_every at sample time, so its op
# count is an estimate; see repro.obs.metrics.OpProbe).
_PUT_PROBE = _metrics.probe("core.channel.put")
_GET_PROBE = _metrics.probe("core.channel.get")
_CONSUME_PROBE = _metrics.probe("core.channel.consume")

# Cached at import: the active-context cell (a stable list, contents
# mutable) and the background sampling mask, so the traced put fast path
# avoids attribute-chain lookups.
_ACTIVE_IDS = tracepoints.ACTIVE_IDS
_TRACE_SAMPLE_MASK = tracepoints.SAMPLE_MASK

# Provenance spans: one recorder object for the process lifetime (the
# enable/disable API mutates it in place), so the hot paths pay a single
# attribute check while spans are off.  Stamped items (an origin rode
# the wire) always record; unstamped local churn is sampled.
_SPANS = _spanmod.GLOBAL_SPANS
_SPAN_SAMPLE_MASK = _spanmod.SAMPLE_MASK
# The raw thread-local, read inline: a function call per put would cost
# more than the whole spans feature is allowed to.
_SPAN_CTX = _spanmod._context


class Channel(Container):
    """A space-time memory channel.

    Parameters mirror :class:`~repro.core.container.Container`, plus:

    overflow:
        Behaviour of ``put`` on a *bounded* channel that is full:

        * ``"block"`` (default) — wait for the collector to free a slot,
          the classic back-pressure of §2 item 7;
        * ``"drop_oldest"`` — evict the oldest live item (running its
          reclaim handlers) to admit the new one: latest-value semantics
          for live media, where a stalled consumer should cost freshness,
          never liveness.  Evictions are counted in ``stats`` via the
          ``reclaimed`` counter and :attr:`evictions`.

    The channel is purely local; distribution is layered on top by the
    runtime (remote threads reach a channel through their surrogate,
    which holds an ordinary local connection on their behalf).
    """

    KIND = "channel"

    OVERFLOW_BLOCK = "block"
    OVERFLOW_DROP_OLDEST = "drop_oldest"

    def __init__(self, name: Optional[str] = None,
                 capacity: Optional[int] = None,
                 overflow: str = OVERFLOW_BLOCK) -> None:
        if overflow not in (self.OVERFLOW_BLOCK,
                            self.OVERFLOW_DROP_OLDEST):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        super().__init__(name=name, capacity=capacity)
        self.overflow = overflow
        self.evictions = 0
        self._items: Dict[Timestamp, Item] = {}
        #: Sorted timestamps of the live items (``_items`` holds exactly
        #: the live ones, so this mirrors its key set in order).
        self._live_index: List[Timestamp] = []
        #: Live bytes, maintained incrementally (puts add, reclaims
        #: subtract) so footprint/peak accounting never rescans.
        self._live_bytes = 0
        #: Highest timestamp W such that every ts <= W is reclaimed (or can
        #: never be put again).  Only reclamation advances it.
        self._watermark: Timestamp = -1  # type: ignore[assignment]
        #: Reclaimed timestamps above the watermark (holes from out-of-order
        #: consumption); folded into the watermark as they become contiguous.
        self._holes: Set[Timestamp] = set()
        # -- incremental-GC state ------------------------------------------
        #: Timestamps whose consumed-set / interest status changed; the
        #: only items an incremental sweep needs to examine.
        self._dead_candidates: Set[Timestamp] = set()
        #: Set when an event invalidates *every* item at once (filter
        #: change, detach, candidate overflow): next sweep scans all.
        self._needs_full_sweep = False
        #: Highest interest floor over current input connections: a put at
        #: or below it may be garbage on arrival and must be a candidate.
        self._max_floor: Timestamp = 0
        #: Whether any input connection carries an attention filter (puts
        #: can then be garbage on arrival for everyone).
        self._filtered_inputs = False
        # -- marker-scan hints ---------------------------------------------
        #: Per-connection: every live ts strictly below the hint is of no
        #: interest to that connection (consumed / floored / filtered).
        self._hint_low: Dict[int, Timestamp] = {}
        #: Per-connection: every live ts strictly above the hint is of no
        #: interest to that connection.
        self._hint_high: Dict[int, Timestamp] = {}

    # -- put ------------------------------------------------------------------

    def put(self, connection: Connection, timestamp: Timestamp, value: Any,
            size: Optional[int] = None, block: bool = True,
            timeout: Optional[float] = None) -> None:
        """Insert *value* at *timestamp* on behalf of *connection*.

        :raises DuplicateTimestampError: the timestamp holds a live item.
        :raises BadTimestampError: the timestamp was already reclaimed.
        :raises ChannelFullError: bounded blocking channel full and
            ``block=False`` (or the timeout expired).
        """
        probe = _PUT_PROBE
        t0 = 0.0
        if not (self._puts + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        validate_timestamp(timestamp)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            self._check_put_timestamp(timestamp)
            while self.capacity is not None and len(self._items) >= self.capacity:
                if self.overflow == self.OVERFLOW_DROP_OLDEST:
                    self._evict_oldest()
                    continue
                if not block:
                    raise ChannelFullError(
                        f"channel {self.name!r} is full "
                        f"({self.capacity} items)"
                    )
                if not self._wait(self._not_full, deadline):
                    raise ChannelFullError(
                        f"timed out waiting for space in channel {self.name!r}"
                    )
                self._check_connection(connection)
                self._check_put_timestamp(timestamp)
            item = Item(timestamp, value, size=size,
                        put_time=time.monotonic())
            self._insert_item(item)
            self._record_put(item.size)
            if _SPANS.enabled:
                entry = _SPAN_CTX.entry
                origin = entry[0] if entry is not None else 0.0
                if origin:
                    item.origin_time = origin
                    _SPANS.record(_spanmod.CONTAINER_INSERT, self.name,
                                  origin, at=item.put_time)
                elif not ((self._puts - 1) & _SPAN_SAMPLE_MASK):
                    _SPANS.record(_spanmod.CONTAINER_INSERT, self.name,
                                  item.put_time, at=item.put_time)
            if tracepoints.GLOBAL_TRACER.enabled:
                # Correlated puts (an id in context — every client RPC
                # mints one) always hit the ring; uncorrelated local puts
                # are sampled, first-put-of-container always included.
                tid = (tracepoints.current_trace_id()
                       if _ACTIVE_IDS[0] else None)
                item.trace_id = tid
                if tid is not None or not (
                        (self._puts - 1) & _TRACE_SAMPLE_MASK):
                    trace(tracepoints.PUT, self.name, trace_id=tid,
                          ts=timestamp, size=item.size)
            # A put below somebody's floor (or into a filtered channel) can
            # be garbage on arrival; flag it for the incremental sweep.
            if timestamp < self._max_floor or self._filtered_inputs:
                self._add_dead_candidate(timestamp)
            self._not_empty.notify_all()
        if t0:
            probe.hist.observe((time.monotonic() - t0) * 1e6)

    def _insert_item(self, item: Item) -> None:
        """Add a live item to primary storage and the sorted index.

        Caller holds the lock.  Also repairs marker-scan hints: the new
        item is unseen, so any hint claiming its region was exhausted must
        retreat to cover it.
        """
        timestamp = item.timestamp
        self._items[timestamp] = item
        insort(self._live_index, timestamp)
        self._live_bytes += item.size
        if self._hint_low:
            for cid, hint in self._hint_low.items():
                if timestamp < hint:
                    self._hint_low[cid] = timestamp
        if self._hint_high:
            for cid, hint in self._hint_high.items():
                if timestamp > hint:
                    self._hint_high[cid] = timestamp

    def _add_dead_candidate(self, timestamp: Timestamp) -> None:
        """Remember *timestamp* for the next incremental sweep."""
        candidates = self._dead_candidates
        if len(candidates) >= _MAX_DEAD_CANDIDATES:
            self._needs_full_sweep = True
            candidates.clear()
        if not self._needs_full_sweep:
            candidates.add(timestamp)
        self._mark_gc_dirty()

    def _evict_oldest(self) -> None:
        """Drop-oldest overflow: reclaim the lowest live timestamp.

        Caller holds the lock and has verified the channel is full (so
        at least one live item exists).
        """
        self.evictions += 1
        self._reclaim(self._items[self._live_index[0]])

    def _check_put_timestamp(self, timestamp: Timestamp) -> None:
        if timestamp in self._items:
            raise DuplicateTimestampError(
                f"channel {self.name!r} already holds timestamp {timestamp}"
            )
        if timestamp <= self._watermark or timestamp in self._holes:
            raise BadTimestampError(
                f"timestamp {timestamp} in channel {self.name!r} was "
                f"already garbage-collected; timestamps are single-use"
            )

    # -- get ------------------------------------------------------------------

    def get(self, connection: Connection, timestamp: VirtualTime,
            block: bool = True,
            timeout: Optional[float] = None) -> Tuple[Timestamp, Any]:
        """Fetch the item at *timestamp* (or at a virtual-time marker).

        Returns ``(actual timestamp, value)`` — for markers the actual
        timestamp tells the caller *which* item it received, which is what
        enables temporal correlation across channels.

        :raises ItemGarbageCollectedError: the timestamp was reclaimed.
        :raises BadTimestampError: the connection's interest floor is
            already above the requested timestamp.
        :raises ItemNotFoundError: nothing available and ``block=False``
            (or the timeout expired).
        """
        item = self.get_item(connection, timestamp, block=block,
                             timeout=timeout)
        return item.timestamp, item.value

    def get_item(self, connection: Connection, timestamp: VirtualTime,
                 block: bool = True,
                 timeout: Optional[float] = None) -> Item:
        """:meth:`get`, but returning the raw :class:`Item` record.

        Boundary layers (the wire surrogate, cross-space isolation) use
        this to reach :meth:`Item.encoded_payload` — the serialize-once
        fan-out cache — instead of re-encoding the value once per
        consumer.  Application code should stick to :meth:`get`; the
        record's bookkeeping fields belong to the container and the GC.
        Same semantics and exceptions as :meth:`get`.
        """
        probe = _GET_PROBE
        t0 = 0.0
        if not (self._gets + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            if is_marker(timestamp):
                result = self._get_marker(connection, timestamp, block,
                                          deadline)
                if t0:
                    probe.hist.observe((time.monotonic() - t0) * 1e6)
                return result
            validate_timestamp(timestamp)
            if timestamp < connection.interest_floor:
                raise BadTimestampError(
                    f"connection {connection.connection_id} promised not to "
                    f"request below {connection.interest_floor}, asked for "
                    f"{timestamp}"
                )
            while True:
                if timestamp <= self._watermark or timestamp in self._holes:
                    raise ItemGarbageCollectedError(
                        f"timestamp {timestamp} in channel {self.name!r} "
                        f"was garbage-collected"
                    )
                item = self._items.get(timestamp)
                if item is not None:
                    self._gets += 1
                    if t0:
                        probe.hist.observe((time.monotonic() - t0) * 1e6)
                    return item
                if not block:
                    raise ItemNotFoundError(
                        f"no item at timestamp {timestamp} in channel "
                        f"{self.name!r}"
                    )
                if not self._wait(self._not_empty, deadline):
                    raise ItemNotFoundError(
                        f"timed out waiting for timestamp {timestamp} in "
                        f"channel {self.name!r}"
                    )
                self._check_connection(connection)

    def _get_marker(self, connection: Connection, marker: VirtualTime,
                    block: bool, deadline: Optional[float]) -> Item:
        pick_newest = marker is NEWEST
        while True:
            item = (self._scan_newest(connection) if pick_newest
                    else self._scan_oldest(connection))
            if item is not None:
                self._gets += 1
                return item
            if not block:
                raise ItemNotFoundError(
                    f"no live item for {marker!r} in channel {self.name!r}"
                )
            if not self._wait(self._not_empty, deadline):
                raise ItemNotFoundError(
                    f"timed out waiting for {marker!r} in channel "
                    f"{self.name!r}"
                )
            self._check_connection(connection)

    def _scan_newest(self, connection: Connection) -> Optional[Item]:
        """Largest live timestamp this connection still wants, or None.

        Walks the sorted index downward starting at the connection's high
        hint — everything above it was already found uninteresting on a
        previous scan and can never become interesting again (consume
        marks and floors are monotone; filter changes reset the hint, and
        new puts push it outward).
        """
        index = self._live_index
        cid = connection.connection_id
        hint = self._hint_high.get(cid)
        if hint is None:
            pos = len(index) - 1
        else:
            pos = bisect_right(index, hint) - 1
        items = self._items
        while pos >= 0:
            item = items[index[pos]]
            if (cid not in item.consumed_by
                    and connection.wants(item.timestamp, item.value)):
                self._hint_high[cid] = item.timestamp
                return item
            pos -= 1
        self._hint_high[cid] = index[0] - 1 if index else -1
        return None

    def _scan_oldest(self, connection: Connection) -> Optional[Item]:
        """Smallest live timestamp this connection still wants, or None."""
        index = self._live_index
        cid = connection.connection_id
        hint = self._hint_low.get(cid)
        pos = 0 if hint is None else bisect_left(index, hint)
        items = self._items
        end = len(index)
        while pos < end:
            item = items[index[pos]]
            if (cid not in item.consumed_by
                    and connection.wants(item.timestamp, item.value)):
                self._hint_low[cid] = item.timestamp
                return item
            pos += 1
        self._hint_low[cid] = index[-1] + 1 if index else 0
        return None

    # -- consume / GC interface -------------------------------------------------

    def consume(self, connection: Connection, timestamp: Timestamp) -> None:
        """Mark the item at *timestamp* garbage for this connection.

        Consuming a timestamp that holds no item is legal (the consumer may
        be running ahead of the producer after a marker get on another
        channel); the mark simply has no effect then.
        """
        probe = _CONSUME_PROBE
        t0 = 0.0
        if not (self._consumes + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            item = self._items.get(timestamp)
            if item is not None:
                if _SPANS.enabled:
                    origin = item.origin_time
                    if origin:
                        _SPANS.consume_span(self.name, origin,
                                            trace_id=item.trace_id)
                    elif not (self._consumes & _SPAN_SAMPLE_MASK):
                        _SPANS.consume_span(self.name, item.put_time,
                                            trace_id=item.trace_id)
                item.mark_consumed(connection.connection_id)
                self._maybe_reclaim(item)
        if t0:
            probe.hist.observe((time.monotonic() - t0) * 1e6)

    def consume_until(self, connection: Connection,
                      timestamp: Timestamp) -> None:
        """Raise this connection's interest floor to *timestamp* and sweep.

        Only live items *below the new floor* can have become garbage, so
        exactly those join the candidate set (an index slice, not a scan
        of everything) before the inline sweep.
        """
        probe = _CONSUME_PROBE
        t0 = 0.0
        if not (self._consumes + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            connection._advance_floor(timestamp)
            if timestamp > self._max_floor:
                self._max_floor = timestamp
            split = bisect_left(self._live_index, timestamp)
            if split:
                self._dead_candidates.update(self._live_index[:split])
                self._mark_gc_dirty()
            if self._gc_dirty:
                # Inline sweep covers candidates parked by earlier events
                # too (e.g. puts below an already-advanced floor).
                self._sweep()
        if t0:
            probe.hist.observe((time.monotonic() - t0) * 1e6)

    def collect_garbage(self) -> Tuple[int, int]:
        """Sweep: reclaim every item flagged dead since the last sweep."""
        with self._lock:
            return self._sweep()

    def _sweep(self) -> Tuple[int, int]:
        """Incremental sweep: visit only dead-candidates (or everything
        after an invalidate-all event).  Caller holds the lock."""
        self._gc_runs += 1
        if self._needs_full_sweep:
            candidates: "list[Timestamp] | Set[Timestamp]" = \
                list(self._live_index)
        elif self._dead_candidates:
            candidates = self._dead_candidates
        else:
            self._gc_dirty = False
            return 0, 0
        views = [c.gc_view() for c in self.input_connections()]
        if not views:
            # Nothing can die without a consumer; keep the candidates (and
            # go clean) until an input connection attaches and re-arms us.
            self._gc_dirty = False
            return 0, 0
        items = 0
        bytes_ = 0
        lookup = self._items
        for ts in list(candidates):
            item = lookup.get(ts)
            if item is not None and self._is_dead(item, views):
                self._reclaim(item)
                items += 1
                bytes_ += item.size
        self._needs_full_sweep = False
        self._dead_candidates.clear()
        self._gc_dirty = False
        if items:
            self._not_full.notify_all()
        return items, bytes_

    def _maybe_reclaim(self, item: Item) -> None:
        views = [c.gc_view() for c in self.input_connections()]
        if views and self._is_dead(item, views):
            self._reclaim(item)
            self._not_full.notify_all()

    @staticmethod
    def _is_dead(
        item: Item,
        views: "list[tuple[int, Timestamp, Optional[Callable]]]",
    ) -> bool:
        """An item is dead once every attached input connection is done with
        it — consumed it, floored past it, or filtered it out — and at least
        one input connection exists to have expressed that disinterest.

        *views* is the per-sweep flat snapshot of the input connections
        (``Connection.gc_view``); the caller guarantees it is non-empty.
        """
        timestamp = item.timestamp
        consumed = item.consumed_by
        for cid, floor, attention in views:
            if cid in consumed:
                continue
            if timestamp < floor:
                continue
            if attention is not None:
                try:
                    if not attention(timestamp, item.value):
                        continue
                except Exception:  # noqa: BLE001 - bad predicate: keep item
                    pass
            return False  # this consumer may still want the item
        return True

    def _reclaim(self, item: Item) -> None:
        item.state = ItemState.GARBAGE
        item.drop_wire_cache()
        timestamp = item.timestamp
        del self._items[timestamp]
        index_pos = bisect_left(self._live_index, timestamp)
        del self._live_index[index_pos]
        self._live_bytes -= item.size
        self._dead_candidates.discard(timestamp)
        self._record_hole(timestamp)
        self._reclaimed += 1
        if _SPANS.enabled:
            # Same stamping rule as the trace event below: the reclaim
            # belongs to the item's journey, so the span uses the
            # item's origin, not whatever the sweeping thread carries.
            if item.origin_time:
                _SPANS.record(_spanmod.GC_RECLAIM, self.name,
                              item.origin_time, trace_id=item.trace_id)
            elif not ((self._reclaimed - 1) & _SPAN_SAMPLE_MASK):
                _SPANS.record(_spanmod.GC_RECLAIM, self.name,
                              item.put_time, trace_id=item.trace_id)
        # The reclaim runs on whichever thread swept, but it belongs to
        # the trace of the put that created the item — the stamped id
        # (not this thread's context) closes the end-to-end span.
        trace(tracepoints.RECLAIM, self.name, trace_id=item.trace_id,
              ts=timestamp, size=item.size)
        errors = self.handlers.run_reclaim(timestamp, item.value)
        item.state = ItemState.RECLAIMED
        if errors:
            from repro.util.logging import get_logger

            log = get_logger("core.channel")
            for exc in errors:
                log.warning(
                    "reclaim handler for %s ts=%d raised: %r",
                    self.name, timestamp, exc,
                )

    def _record_hole(self, timestamp: Timestamp) -> None:
        self._holes.add(timestamp)
        while (self._watermark + 1) in self._holes:
            self._watermark += 1
            self._holes.discard(self._watermark)

    # -- connection events ---------------------------------------------------------

    def _on_attach(self, connection: Connection) -> None:
        if not connection.mode.can_get:
            return
        if connection.attention_filter is not None:
            # A filtered newcomer can make old items dead *immediately*
            # (deadness needs >= 1 input, and this input wants nothing the
            # filter rejects).
            self._filtered_inputs = True
            self._needs_full_sweep = True
            self._mark_gc_dirty()
        elif self._dead_candidates or self._needs_full_sweep:
            # Work parked while the channel had no consumer (nothing can
            # die without one) becomes actionable with this attach.
            self._mark_gc_dirty()

    def _on_detach(self, connection: Connection) -> None:
        if not connection.mode.can_get:
            return
        cid = connection.connection_id
        self._hint_low.pop(cid, None)
        self._hint_high.pop(cid, None)
        self._refresh_input_summary()
        # The departed veto may have been the last one on any item.
        self._needs_full_sweep = True
        self._mark_gc_dirty()

    def _on_attention_changed(self, connection: Connection) -> None:
        cid = connection.connection_id
        self._hint_low.pop(cid, None)
        self._hint_high.pop(cid, None)
        self._refresh_input_summary()
        self._needs_full_sweep = True
        self._mark_gc_dirty()

    def _refresh_input_summary(self) -> None:
        """Recompute the put-fast-path summary of the input connections."""
        floors = [0]
        filtered = False
        for conn in self.input_connections():
            floors.append(conn.interest_floor)
            if conn.attention_filter is not None:
                filtered = True
        self._max_floor = max(floors)
        self._filtered_inputs = filtered

    # -- introspection ------------------------------------------------------------

    def live_timestamps(self) -> "list[Timestamp]":
        """Sorted timestamps of live items (diagnostics and tests)."""
        with self._lock:
            return list(self._live_index)

    @property
    def oldest_live(self) -> Optional[Timestamp]:
        """Smallest live timestamp, or None when empty."""
        with self._lock:
            return self._live_index[0] if self._live_index else None

    @property
    def newest_live(self) -> Optional[Timestamp]:
        """Largest live timestamp, or None when empty."""
        with self._lock:
            return self._live_index[-1] if self._live_index else None

    def oldest_live_age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds the oldest live item has sat unreclaimed, or None.

        The core stall signal: a healthy pipeline keeps this bounded by
        its consumers' pace; a stuck consumer makes it grow without
        limit while occupancy may look fine.
        """
        with self._lock:
            if not self._live_index:
                return None
            item = self._items[self._live_index[0]]
            return (time.monotonic() if now is None else now) - item.put_time

    def blocking_connections(self) -> List[Dict[str, Any]]:
        """Input connections still vetoing reclaim of the oldest live item.

        The stall watchdog uses this to *name* the laggard: when the
        oldest-age breaches its limit, whoever appears here is the
        consumer the rest of the pipeline is waiting on.
        """
        with self._lock:
            if not self._live_index:
                return []
            item = self._items[self._live_index[0]]
            culprits: List[Dict[str, Any]] = []
            for conn in self.input_connections():
                cid = conn.connection_id
                if cid in item.consumed_by:
                    continue
                if item.timestamp < conn.interest_floor:
                    continue
                if not conn.wants(item.timestamp, item.value):
                    continue
                culprits.append({
                    "connection_id": cid,
                    "owner": conn.owner,
                    "interest_floor": conn.interest_floor,
                    "timestamp": item.timestamp,
                })
            return culprits

    def _live_footprint(self) -> Tuple[int, int]:
        return len(self._live_index), self._live_bytes

    # -- internals -------------------------------------------------------------------

    def _wait(self, condition: "Any", deadline: Optional[float]) -> bool:
        """Wait on *condition*; False means the deadline passed."""
        if deadline is None:
            condition.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return condition.wait(remaining)
