"""Queues: FIFO-access shared containers for stream data.

"A queue, as the name suggests, allows FIFO access to items contained in
it.  The queue abstraction is primarily designed to exploit any data
parallelism in an application" (§3.1): a splitter puts frame-fragments —
all carrying the *same* timestamp — into a queue, a pool of worker threads
each dequeue one fragment, and a joiner stitches the analyzed outputs back
together (Figure 3).

Semantics that differ from channels:

* timestamps need **not** be unique — fragments of one frame share one;
* ``get`` *removes* the front item (each item is delivered to exactly one
  getter — that is what makes the worker pool a work-sharing construct);
* a dequeued item is still accounted to the queue until the consumer calls
  ``consume(ts)`` (or the queue was created with ``auto_consume=True``),
  at which point the reclaim handlers run.

The class is named ``SQueue`` ("Stampede queue") to avoid clashing with
:mod:`queue` in the standard library.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.connection import Connection
from repro.core.container import Container
from repro.core.item import Item, ItemState
from repro.core.timestamps import (
    OLDEST,
    Timestamp,
    VirtualTime,
    is_marker,
    validate_timestamp,
)
from repro.util import trace as tracepoints
from repro.util.trace import trace
from repro.errors import (
    BadTimestampError,
    ChannelFullError,
    ItemNotFoundError,
)


class SQueue(Container):
    """A space-time memory queue.

    Parameters
    ----------
    name, capacity:
        As for :class:`~repro.core.container.Container`.  Capacity counts
        queued *plus* dequeued-but-unconsumed items, since both hold memory.
    auto_consume:
        If true, ``get`` immediately consumes the item it returns — the
        common case for workers that copy what they need out of the
        fragment before processing.
    """

    KIND = "queue"

    def __init__(self, name: Optional[str] = None,
                 capacity: Optional[int] = None,
                 auto_consume: bool = False) -> None:
        super().__init__(name=name, capacity=capacity)
        self.auto_consume = auto_consume
        self._fifo: Deque[Item] = deque()
        #: Dequeued, not-yet-consumed items: seq -> (connection_id, item).
        self._pending: Dict[int, Tuple[int, Item]] = {}
        self._seq = itertools.count(1)
        self._pending_seq_by_item: Dict[int, int] = {}

    # -- put ---------------------------------------------------------------------

    def put(self, connection: Connection, timestamp: Timestamp, value: Any,
            size: Optional[int] = None, block: bool = True,
            timeout: Optional[float] = None) -> None:
        """Append *value* with *timestamp* to the back of the queue."""
        validate_timestamp(timestamp)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            while self.capacity is not None and self._held() >= self.capacity:
                if not block:
                    raise ChannelFullError(
                        f"queue {self.name!r} is full ({self.capacity} items)"
                    )
                if not self._wait(self._not_full, deadline):
                    raise ChannelFullError(
                        f"timed out waiting for space in queue {self.name!r}"
                    )
                self._check_connection(connection)
            item = Item(timestamp, value, size=size,
                        put_time=time.monotonic())
            self._fifo.append(item)
            self._record_put(item.size)
            trace(tracepoints.PUT, self.name, ts=timestamp,
                  size=item.size)
            self._not_empty.notify_all()

    def _held(self) -> int:
        return len(self._fifo) + len(self._pending)

    # -- get ---------------------------------------------------------------------

    def get(self, connection: Connection, timestamp: VirtualTime = OLDEST,
            block: bool = True,
            timeout: Optional[float] = None) -> Tuple[Timestamp, Any]:
        """Dequeue the front item this connection will accept.

        The *timestamp* argument exists for API uniformity with channels
        and must be :data:`~repro.core.timestamps.OLDEST`; a queue cannot
        be randomly accessed.

        :raises BadTimestampError: a concrete timestamp (or ``NEWEST``) was
            requested.
        :raises ItemNotFoundError: queue empty (after filtering) and
            ``block=False`` or timeout expired.
        """
        if not (is_marker(timestamp) and timestamp is OLDEST):
            raise BadTimestampError(
                "queues are FIFO: get() only accepts OLDEST"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            while True:
                item = self._first_acceptable(connection)
                if item is not None:
                    self._fifo.remove(item)
                    self._gets += 1
                    if self.auto_consume:
                        self._reclaim(item)
                        self._not_full.notify_all()
                    else:
                        item.dequeued_by = connection.connection_id
                        seq = next(self._seq)
                        self._pending[seq] = (connection.connection_id, item)
                        self._pending_seq_by_item[id(item)] = seq
                    return item.timestamp, item.value
                if not block:
                    raise ItemNotFoundError(
                        f"queue {self.name!r} has no acceptable item"
                    )
                if not self._wait(self._not_empty, deadline):
                    raise ItemNotFoundError(
                        f"timed out waiting on queue {self.name!r}"
                    )
                self._check_connection(connection)

    def _first_acceptable(self, connection: Connection) -> Optional[Item]:
        """First queued item passing the connection's selective attention.

        Items the connection filters out are *skipped, not removed* — they
        remain available to sibling workers with different filters.
        """
        for item in self._fifo:
            if connection.wants(item.timestamp, item.value):
                return item
        return None

    # -- consume / GC ------------------------------------------------------------

    def consume(self, connection: Connection, timestamp: Timestamp) -> None:
        """Reclaim every item this connection dequeued at *timestamp*."""
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            self._consume_pending(
                lambda cid, item: cid == connection.connection_id
                and item.timestamp == timestamp
            )

    def consume_until(self, connection: Connection,
                      timestamp: Timestamp) -> None:
        """Reclaim this connection's dequeued items below *timestamp* and
        raise its interest floor (future queued items below the floor are
        skipped for this connection and collectable once no one wants them).
        """
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            connection._advance_floor(timestamp)
            self._consume_pending(
                lambda cid, item: cid == connection.connection_id
                and item.timestamp < timestamp
            )
            self._sweep_queued()

    def _consume_pending(self, predicate: Any) -> None:
        reclaimed = False
        for seq, (cid, item) in list(self._pending.items()):
            if predicate(cid, item):
                del self._pending[seq]
                self._pending_seq_by_item.pop(id(item), None)
                self._reclaim(item)
                reclaimed = True
        if reclaimed:
            self._not_full.notify_all()

    def collect_garbage(self) -> Tuple[int, int]:
        """Reclaim queued items no attached input connection will accept."""
        with self._lock:
            return self._sweep_queued()

    def _sweep_queued(self) -> Tuple[int, int]:
        inputs = self.input_connections()
        if not inputs:
            return 0, 0
        dead: List[Item] = [
            item for item in self._fifo
            if not any(c.wants(item.timestamp, item.value) for c in inputs)
        ]
        items = 0
        bytes_ = 0
        for item in dead:
            self._fifo.remove(item)
            self._reclaim(item)
            items += 1
            bytes_ += item.size
        if items:
            self._not_full.notify_all()
        return items, bytes_

    def _reclaim(self, item: Item) -> None:
        item.state = ItemState.GARBAGE
        self._reclaimed += 1
        trace(tracepoints.RECLAIM, self.name, ts=item.timestamp,
              size=item.size)
        errors = self.handlers.run_reclaim(item.timestamp, item.value)
        item.state = ItemState.RECLAIMED
        if errors:
            from repro.util.logging import get_logger

            log = get_logger("core.squeue")
            for exc in errors:
                log.warning(
                    "reclaim handler for %s ts=%d raised: %r",
                    self.name, item.timestamp, exc,
                )

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of queued (not yet dequeued) items."""
        with self._lock:
            return len(self._fifo)

    @property
    def pending_count(self) -> int:
        """Dequeued-but-unconsumed items."""
        with self._lock:
            return len(self._pending)

    def queued_timestamps(self) -> List[Timestamp]:
        """Timestamps of queued items, FIFO order."""
        with self._lock:
            return [item.timestamp for item in self._fifo]

    def _live_footprint(self) -> Tuple[int, int]:
        queued = list(self._fifo) + [i for _, i in self._pending.values()]
        return len(queued), sum(i.size for i in queued)

    # -- internals -------------------------------------------------------------------

    def _wait(self, condition: Any, deadline: Optional[float]) -> bool:
        if deadline is None:
            condition.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return condition.wait(remaining)
