"""Queues: FIFO-access shared containers for stream data.

"A queue, as the name suggests, allows FIFO access to items contained in
it.  The queue abstraction is primarily designed to exploit any data
parallelism in an application" (§3.1): a splitter puts frame-fragments —
all carrying the *same* timestamp — into a queue, a pool of worker threads
each dequeue one fragment, and a joiner stitches the analyzed outputs back
together (Figure 3).

Semantics that differ from channels:

* timestamps need **not** be unique — fragments of one frame share one;
* ``get`` *removes* the front item (each item is delivered to exactly one
  getter — that is what makes the worker pool a work-sharing construct);
* a dequeued item is still accounted to the queue until the consumer calls
  ``consume(ts)`` (or the queue was created with ``auto_consume=True``),
  at which point the reclaim handlers run.

The class is named ``SQueue`` ("Stampede queue") to avoid clashing with
:mod:`queue` in the standard library.

Performance structure (see docs/API.md "Performance notes"): dequeued-but-
unconsumed items are indexed per connection and per timestamp, so
``consume``/``consume_until`` touch exactly the items they release instead
of scanning every pending item; queued-item reclamation is incremental
(new puts are the only sweep candidates until a floor/filter/detach event
forces one full pass), and the queue participates in the collector's
dirty-marking protocol so idle queues cost the daemon nothing.
"""

from __future__ import annotations

import itertools
import time
from bisect import bisect_left, insort
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.connection import Connection
from repro.core.container import Container
from repro.core.item import Item, ItemState
from repro.core.timestamps import (
    OLDEST,
    Timestamp,
    VirtualTime,
    is_marker,
    validate_timestamp,
)
from repro.obs.metrics import GLOBAL_METRICS as _metrics
from repro.obs import spans as _spanmod
from repro.util import trace as tracepoints
from repro.util.trace import trace
from repro.errors import (
    BadTimestampError,
    ChannelFullError,
    ItemNotFoundError,
)

# Hot-path probes, same contract as the channel's (repro.obs.metrics).
_PUT_PROBE = _metrics.probe("core.squeue.put")
_GET_PROBE = _metrics.probe("core.squeue.get")
_CONSUME_PROBE = _metrics.probe("core.squeue.consume")

# Cached at import for the traced put fast path (see channel.py).
_ACTIVE_IDS = tracepoints.ACTIVE_IDS
_TRACE_SAMPLE_MASK = tracepoints.SAMPLE_MASK

# Provenance spans, same contract as the channel's: stamped items always
# record, unstamped local churn is sampled (see repro.obs.spans).
_SPANS = _spanmod.GLOBAL_SPANS
_SPAN_SAMPLE_MASK = _spanmod.SAMPLE_MASK
# The raw thread-local, read inline: a function call per put would cost
# more than the whole spans feature is allowed to.
_SPAN_CTX = _spanmod._context


class SQueue(Container):
    """A space-time memory queue.

    Parameters
    ----------
    name, capacity:
        As for :class:`~repro.core.container.Container`.  Capacity counts
        queued *plus* dequeued-but-unconsumed items, since both hold memory.
    auto_consume:
        If true, ``get`` immediately consumes the item it returns — the
        common case for workers that copy what they need out of the
        fragment before processing.
    """

    KIND = "queue"

    def __init__(self, name: Optional[str] = None,
                 capacity: Optional[int] = None,
                 auto_consume: bool = False) -> None:
        super().__init__(name=name, capacity=capacity)
        self.auto_consume = auto_consume
        self._fifo: Deque[Item] = deque()
        #: Dequeued, not-yet-consumed items in dequeue order: seq -> item
        #: (insertion-ordered dict; the order matters for checkpointing).
        self._pending: Dict[int, Item] = {}
        self._seq = itertools.count(1)
        #: Per-connection pending index: cid -> ts -> [seq, ...] so that
        #: ``consume(ts)`` pops exactly its bucket instead of scanning all
        #: pending items.
        self._pending_index: Dict[int, Dict[Timestamp, List[int]]] = {}
        #: Per-connection sorted list of pending timestamps (bisect-kept)
        #: so ``consume_until`` releases a prefix in O(released).
        self._pending_ts: Dict[int, List[Timestamp]] = {}
        #: Bytes held by queued + pending items, kept incrementally.
        self._held_bytes = 0
        #: Queued items that arrived since the last sweep: the only items
        #: an incremental sweep must test for dead-on-arrival status.
        self._sweep_candidates: List[Item] = []
        #: Set by floor/filter/detach events, which can kill *any* queued
        #: item: the next sweep walks the whole FIFO once.
        self._needs_full_sweep = False

    # -- put ---------------------------------------------------------------------

    def put(self, connection: Connection, timestamp: Timestamp, value: Any,
            size: Optional[int] = None, block: bool = True,
            timeout: Optional[float] = None) -> None:
        """Append *value* with *timestamp* to the back of the queue."""
        probe = _PUT_PROBE
        t0 = 0.0
        if not (self._puts + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        validate_timestamp(timestamp)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            while self.capacity is not None and self._held() >= self.capacity:
                if not block:
                    raise ChannelFullError(
                        f"queue {self.name!r} is full ({self.capacity} items)"
                    )
                if not self._wait(self._not_full, deadline):
                    raise ChannelFullError(
                        f"timed out waiting for space in queue {self.name!r}"
                    )
                self._check_connection(connection)
            item = Item(timestamp, value, size=size,
                        put_time=time.monotonic())
            self._fifo.append(item)
            self._held_bytes += item.size
            self._record_put(item.size)
            if _SPANS.enabled:
                entry = _SPAN_CTX.entry
                origin = entry[0] if entry is not None else 0.0
                if origin:
                    item.origin_time = origin
                    _SPANS.record(_spanmod.CONTAINER_INSERT, self.name,
                                  origin, at=item.put_time)
                elif not ((self._puts - 1) & _SPAN_SAMPLE_MASK):
                    _SPANS.record(_spanmod.CONTAINER_INSERT, self.name,
                                  item.put_time, at=item.put_time)
            if tracepoints.GLOBAL_TRACER.enabled:
                # Correlated puts always hit the ring; uncorrelated local
                # puts are sampled, first-put-of-queue always included.
                tid = (tracepoints.current_trace_id()
                       if _ACTIVE_IDS[0] else None)
                item.trace_id = tid
                if tid is not None or not (
                        (self._puts - 1) & _TRACE_SAMPLE_MASK):
                    trace(tracepoints.PUT, self.name, trace_id=tid,
                          ts=timestamp, size=item.size)
            # The newcomer may be acceptable to nobody (floored or filtered
            # out by every worker): flag it for the incremental sweep.
            self._sweep_candidates.append(item)
            self._mark_gc_dirty()
            self._not_empty.notify_all()
        if t0:
            probe.hist.observe((time.monotonic() - t0) * 1e6)

    def _held(self) -> int:
        return len(self._fifo) + len(self._pending)

    # -- get ---------------------------------------------------------------------

    def get(self, connection: Connection, timestamp: VirtualTime = OLDEST,
            block: bool = True,
            timeout: Optional[float] = None) -> Tuple[Timestamp, Any]:
        """Dequeue the front item this connection will accept.

        The *timestamp* argument exists for API uniformity with channels
        and must be :data:`~repro.core.timestamps.OLDEST`; a queue cannot
        be randomly accessed.

        :raises BadTimestampError: a concrete timestamp (or ``NEWEST``) was
            requested.
        :raises ItemNotFoundError: queue empty (after filtering) and
            ``block=False`` or timeout expired.
        """
        if not (is_marker(timestamp) and timestamp is OLDEST):
            raise BadTimestampError(
                "queues are FIFO: get() only accepts OLDEST"
            )
        probe = _GET_PROBE
        t0 = 0.0
        if not (self._gets + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_connection(connection)
            while True:
                item = self._dequeue_acceptable(connection)
                if item is not None:
                    self._gets += 1
                    if self.auto_consume:
                        self._note_consume(item, self._gets)
                        self._reclaim(item)
                        self._held_bytes -= item.size
                        self._not_full.notify_all()
                    else:
                        self._add_pending(connection.connection_id, item)
                    if t0:
                        probe.hist.observe((time.monotonic() - t0) * 1e6)
                    return item.timestamp, item.value
                if not block:
                    raise ItemNotFoundError(
                        f"queue {self.name!r} has no acceptable item"
                    )
                if not self._wait(self._not_empty, deadline):
                    raise ItemNotFoundError(
                        f"timed out waiting on queue {self.name!r}"
                    )
                self._check_connection(connection)

    def _dequeue_acceptable(self, connection: Connection) -> Optional[Item]:
        """Remove and return the first queued item passing the connection's
        selective attention, or None.

        Items the connection filters out are *skipped, not removed* — they
        remain available to sibling workers with different filters.  The
        overwhelmingly common unfiltered case pays one O(1) ``popleft``.
        """
        fifo = self._fifo
        for index, item in enumerate(fifo):
            if connection.wants(item.timestamp, item.value):
                if index == 0:
                    fifo.popleft()
                else:
                    del fifo[index]
                return item
        return None

    def _add_pending(self, connection_id: int, item: Item) -> None:
        item.dequeued_by = connection_id
        seq = next(self._seq)
        self._pending[seq] = item
        buckets = self._pending_index.setdefault(connection_id, {})
        bucket = buckets.get(item.timestamp)
        if bucket is None:
            buckets[item.timestamp] = [seq]
            insort(self._pending_ts.setdefault(connection_id, []),
                   item.timestamp)
        else:
            bucket.append(seq)

    # -- consume / GC ------------------------------------------------------------

    def consume(self, connection: Connection, timestamp: Timestamp) -> None:
        """Reclaim every item this connection dequeued at *timestamp*."""
        probe = _CONSUME_PROBE
        t0 = 0.0
        if not (self._consumes + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            cid = connection.connection_id
            buckets = self._pending_index.get(cid)
            seqs = buckets.pop(timestamp, None) if buckets else None
            if seqs is not None:
                ts_list = self._pending_ts[cid]
                del ts_list[bisect_left(ts_list, timestamp)]
                self._release_pending(seqs)
        if t0:
            probe.hist.observe((time.monotonic() - t0) * 1e6)

    def consume_until(self, connection: Connection,
                      timestamp: Timestamp) -> None:
        """Reclaim this connection's dequeued items below *timestamp* and
        raise its interest floor (future queued items below the floor are
        skipped for this connection and collectable once no one wants them).
        """
        probe = _CONSUME_PROBE
        t0 = 0.0
        if not (self._consumes + 1) & probe.mask:  # mask is -1 when off
            probe.tick += probe.mask + 1
            t0 = time.monotonic()
        validate_timestamp(timestamp)
        with self._lock:
            self._check_connection(connection)
            self._consumes += 1
            connection._advance_floor(timestamp)
            cid = connection.connection_id
            ts_list = self._pending_ts.get(cid)
            if ts_list:
                split = bisect_left(ts_list, timestamp)
                if split:
                    buckets = self._pending_index[cid]
                    seqs: List[int] = []
                    for ts in ts_list[:split]:
                        seqs.extend(buckets.pop(ts))
                    del ts_list[:split]
                    self._release_pending(seqs)
            # The raised floor may strand already-queued items below it.
            self._needs_full_sweep = True
            self._sweep_queued()
        if t0:
            probe.hist.observe((time.monotonic() - t0) * 1e6)

    def _note_consume(self, item: Item, tick: int) -> None:
        """Span hook for the moment a worker is done with *item* (an
        explicit consume, or an auto-consuming get).  *tick* drives the
        sampling of unstamped items."""
        if _SPANS.enabled:
            origin = item.origin_time
            if origin:
                _SPANS.consume_span(self.name, origin,
                                    trace_id=item.trace_id)
            elif not (tick & _SPAN_SAMPLE_MASK):
                _SPANS.consume_span(self.name, item.put_time,
                                    trace_id=item.trace_id)

    def _release_pending(self, seqs: List[int]) -> None:
        """Reclaim the pending items behind *seqs*.  Caller holds the lock
        and has already unlinked them from the per-connection index."""
        for seq in seqs:
            item = self._pending.pop(seq)
            self._held_bytes -= item.size
            self._note_consume(item, self._consumes)
            self._reclaim(item)
        if seqs:
            self._not_full.notify_all()

    def collect_garbage(self) -> Tuple[int, int]:
        """Reclaim queued items no attached input connection will accept."""
        with self._lock:
            return self._sweep_queued()

    def _sweep_queued(self) -> Tuple[int, int]:
        self._gc_runs += 1
        if self._needs_full_sweep:
            candidates: "list[Item] | Deque[Item]" = self._fifo
        elif self._sweep_candidates:
            candidates = self._sweep_candidates
        else:
            self._gc_dirty = False
            return 0, 0
        views = [c.gc_view() for c in self.input_connections()]
        if not views:
            # No consumer: queued items are immortal for now; keep the
            # candidates until an input connection attaches.
            self._gc_dirty = False
            return 0, 0
        dead: List[Item] = []
        for item in candidates:
            if item.state is not ItemState.LIVE or \
                    item.dequeued_by is not None:
                # Stale candidate: reclaimed already, or dequeued and now
                # awaiting its worker's consume — either way not queued.
                continue
            timestamp = item.timestamp
            for cid, floor, attention in views:
                if timestamp < floor:
                    continue
                if attention is not None:
                    try:
                        if not attention(timestamp, item.value):
                            continue
                    except Exception:  # noqa: BLE001 - keep item
                        pass
                break  # someone may still accept it
            else:
                dead.append(item)
        self._needs_full_sweep = False
        self._sweep_candidates = []
        self._gc_dirty = False
        items = 0
        bytes_ = 0
        if dead:
            dead_ids = {id(item) for item in dead}
            self._fifo = deque(
                item for item in self._fifo if id(item) not in dead_ids
            )
            for item in dead:
                self._held_bytes -= item.size
                self._reclaim(item)
                items += 1
                bytes_ += item.size
            self._not_full.notify_all()
        return items, bytes_

    def _reclaim(self, item: Item) -> None:
        item.state = ItemState.GARBAGE
        self._reclaimed += 1
        if _SPANS.enabled:
            # Stamped like the trace event below: the span belongs to
            # the item's journey, not the sweeping thread's context.
            if item.origin_time:
                _SPANS.record(_spanmod.GC_RECLAIM, self.name,
                              item.origin_time, trace_id=item.trace_id)
            elif not ((self._reclaimed - 1) & _SPAN_SAMPLE_MASK):
                _SPANS.record(_spanmod.GC_RECLAIM, self.name,
                              item.put_time, trace_id=item.trace_id)
        # Reclaims join the trace of the put that created the item (the
        # stamped id), not whichever thread happened to sweep.
        trace(tracepoints.RECLAIM, self.name, trace_id=item.trace_id,
              ts=item.timestamp, size=item.size)
        errors = self.handlers.run_reclaim(item.timestamp, item.value)
        item.state = ItemState.RECLAIMED
        if errors:
            from repro.util.logging import get_logger

            log = get_logger("core.squeue")
            for exc in errors:
                log.warning(
                    "reclaim handler for %s ts=%d raised: %r",
                    self.name, item.timestamp, exc,
                )

    # -- connection events ---------------------------------------------------------

    def _on_attach(self, connection: Connection) -> None:
        if not connection.mode.can_get:
            return
        if connection.attention_filter is not None:
            self._needs_full_sweep = True
            self._mark_gc_dirty()
        elif self._sweep_candidates or self._needs_full_sweep:
            self._mark_gc_dirty()

    def _on_detach(self, connection: Connection) -> None:
        if not connection.mode.can_get:
            return
        # A sibling worker's veto is gone; any queued item may be dead now.
        self._needs_full_sweep = True
        self._mark_gc_dirty()

    def _on_attention_changed(self, connection: Connection) -> None:
        self._needs_full_sweep = True
        self._mark_gc_dirty()

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of queued (not yet dequeued) items."""
        with self._lock:
            return len(self._fifo)

    @property
    def pending_count(self) -> int:
        """Dequeued-but-unconsumed items."""
        with self._lock:
            return len(self._pending)

    def queued_timestamps(self) -> List[Timestamp]:
        """Timestamps of queued items, FIFO order."""
        with self._lock:
            return [item.timestamp for item in self._fifo]

    def oldest_live_age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds the front queued item has waited for a getter, or the
        oldest pending (dequeued-but-unconsumed) item for its consume —
        whichever is older.  None when the queue holds nothing."""
        with self._lock:
            oldest: Optional[float] = None
            if self._fifo:
                oldest = self._fifo[0].put_time
            if self._pending:
                # Insertion-ordered dict: the first pending is the oldest.
                first = next(iter(self._pending.values()))
                if oldest is None or first.put_time < oldest:
                    oldest = first.put_time
            if oldest is None:
                return None
            return (time.monotonic() if now is None else now) - oldest

    def blocking_connections(self) -> List[Dict[str, Any]]:
        """Connections holding dequeued-but-unconsumed items.

        For a queue the laggard is a worker that dequeued work and never
        consumed it: the capacity those items pin is what eventually
        back-pressures the producers.
        """
        with self._lock:
            counts: Dict[int, int] = {}
            for item in self._pending.values():
                if item.dequeued_by is not None:
                    counts[item.dequeued_by] = \
                        counts.get(item.dequeued_by, 0) + 1
            out = []
            for conn in self.input_connections():
                held = counts.get(conn.connection_id, 0)
                if held:
                    out.append({
                        "connection_id": conn.connection_id,
                        "owner": conn.owner,
                        "pending": held,
                    })
            return out

    def _pending_items(self) -> List[Item]:
        """Dequeued-but-unconsumed items in dequeue order (checkpointing)."""
        return list(self._pending.values())

    def _live_footprint(self) -> Tuple[int, int]:
        return len(self._fifo) + len(self._pending), self._held_bytes

    # -- internals -------------------------------------------------------------------

    def _restore_item(self, item: Item) -> None:
        """Re-queue a checkpointed item (see :mod:`repro.core.persistence`)."""
        self._fifo.append(item)
        self._held_bytes += item.size
        self._sweep_candidates.append(item)

    def _wait(self, condition: Any, deadline: Optional[float]) -> bool:
        if deadline is None:
            condition.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return condition.wait(remaining)
