"""The distributed garbage collector.

"Using this per-thread knowledge, D-Stampede automatically performs
distributed garbage collection of timestamps that are of no interest to
any thread in the computation" (§3.1), and it runs "concurrent with
application execution" (§3.2.2).

The collector here is the per-address-space daemon.  Distribution falls
out of the architecture rather than requiring a distributed algorithm: a
channel lives in exactly one address space, and every consumer — local
thread or remote end device via its surrogate — is represented by a local
connection on that channel.  The local sweep therefore sees the complete
set of interests, and reclamation notifications to end devices travel
through the reclaim-handler mechanism their surrogates installed
(§3.2.4).

Collection is *dirty-driven*: containers mark themselves dirty on the
events that can create garbage (see ``Container._mark_gc_dirty``), and a
sweep visits only the dirty ones.  A quiescent application costs the
daemon nothing per cycle — it wakes, finds the dirty set empty, and goes
back to sleep without touching a single container.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.container import Container
from repro.obs.metrics import GLOBAL_METRICS as _metrics
from repro.util.logging import get_logger

_log = get_logger("core.gc")

# Sweeps that find dirty work are off the hot path (tens per second at
# most), so they use plain instruments rather than sampled probes.  The
# *idle* sweep is different: a quiescent daemon's no-op visit runs in
# well under a microsecond, so idle sweeps must not touch the registry
# at all — their counts are carried by the collector's own report and
# flushed with the next productive sweep.  The swept/skipped pair yields
# the dirty-skip ratio: how much work dirty-driven collection is
# avoiding versus a scan-everything collector.
_SWEEP_US = _metrics.histogram("core.gc.sweep_us")
_SWEEPS = _metrics.counter("core.gc.sweeps")
_ITEMS_RECLAIMED = _metrics.counter("core.gc.items_reclaimed")
_BYTES_RECLAIMED = _metrics.counter("core.gc.bytes_reclaimed")
_CONTAINERS_SWEPT = _metrics.counter("core.gc.containers_swept")
_CONTAINERS_SKIPPED = _metrics.counter("core.gc.containers_skipped")


@dataclass
class GcReport:
    """Cumulative collection statistics."""

    sweeps: int = 0
    items_reclaimed: int = 0
    bytes_reclaimed: int = 0
    #: Containers actually examined (dirty at sweep time) across all sweeps.
    containers_swept: int = 0
    #: Containers skipped because they were clean, across all sweeps.
    containers_skipped: int = 0
    per_container: Dict[str, int] = field(default_factory=dict)

    def record(self, container_name: str, items: int, bytes_: int) -> None:
        """Accumulate one container's sweep result."""
        self.items_reclaimed += items
        self.bytes_reclaimed += bytes_
        if items:
            self.per_container[container_name] = (
                self.per_container.get(container_name, 0) + items
            )


class GarbageCollector:
    """Background sweeper over a set of containers.

    Containers also reclaim opportunistically inside ``consume`` calls; the
    daemon exists to catch reclamation enabled by *other* events — interest
    floors advanced on different containers, detached connections, filter
    state — and to amortise sweep cost off the application's critical path,
    as in the original system.  Registered containers notify the collector
    when a garbage-creating event dirties them; each sweep visits exactly
    the dirty set, so clean containers are never rescanned.

    Parameters
    ----------
    interval:
        Seconds between background sweeps.
    start:
        Start the daemon thread immediately.
    """

    def __init__(self, interval: float = 0.05, start: bool = False) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.report = GcReport()
        #: Watermark of report values already flushed to the registry.
        self._flushed = GcReport()
        self._containers: Dict[int, Container] = {}
        self._dirty: Dict[int, Container] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    # -- registration ------------------------------------------------------------

    def register(self, container: Container) -> None:
        """Begin sweeping *container*.

        The container is considered dirty at registration (events before
        registration were invisible to this collector), and its dirty
        notifications are wired up so subsequent events enqueue it.
        """
        with self._lock:
            self._containers[container.container_id] = container
            self._dirty[container.container_id] = container
        container._set_gc_notifier(self._container_dirtied)

    def unregister(self, container: Container) -> None:
        """Stop sweeping *container*."""
        container._set_gc_notifier(None)
        with self._lock:
            self._containers.pop(container.container_id, None)
            self._dirty.pop(container.container_id, None)

    def registered(self) -> List[Container]:
        """Snapshot of the registered containers."""
        with self._lock:
            return list(self._containers.values())

    def _container_dirtied(self, container: Container) -> None:
        """Dirty-event callback installed on registered containers.

        Runs under the *container's* lock; only enqueues (never calls back
        into the container) so lock order stays container → collector.
        """
        with self._lock:
            if container.container_id in self._containers:
                self._dirty[container.container_id] = container

    # -- collection ---------------------------------------------------------------

    def sweep(self) -> "tuple[int, int]":
        """Run one synchronous sweep over the *dirty* containers.

        Clean containers are skipped without being touched.  Returns
        ``(items, bytes)`` reclaimed by this sweep.
        """
        with self._lock:
            dirty = list(self._dirty.values())
            self._dirty.clear()
            clean_count = len(self._containers) - len(dirty)
        # Only productive sweeps are timed and flushed: the idle no-op
        # sweep is the steady-state case and must stay registry-free.
        t0 = time.monotonic() if dirty and _metrics.enabled else 0.0
        total_items = 0
        total_bytes = 0
        swept = 0
        for container in dirty:
            if container.destroyed:
                self.unregister(container)
                continue
            items, bytes_ = container.collect_garbage()
            self.report.record(container.name, items, bytes_)
            self.report.containers_swept += 1
            swept += 1
            total_items += items
            total_bytes += bytes_
        self.report.containers_skipped += clean_count
        self.report.sweeps += 1
        if t0:
            _SWEEP_US.observe((time.monotonic() - t0) * 1e6)
            self._flush_counters()
        return total_items, total_bytes

    def _flush_counters(self) -> None:
        """Publish report deltas into the global registry.

        Deltas against the flushed watermark mean idle sweeps' counts
        (accumulated in :attr:`report` for free) ride along with the
        next productive sweep, and nothing is ever double-counted even
        with several collectors sharing the global instruments.
        """
        r, f = self.report, self._flushed
        _SWEEPS.value += r.sweeps - f.sweeps
        _ITEMS_RECLAIMED.value += r.items_reclaimed - f.items_reclaimed
        _BYTES_RECLAIMED.value += r.bytes_reclaimed - f.bytes_reclaimed
        _CONTAINERS_SWEPT.value += r.containers_swept - f.containers_swept
        _CONTAINERS_SKIPPED.value += (r.containers_skipped
                                      - f.containers_skipped)
        f.sweeps = r.sweeps
        f.items_reclaimed = r.items_reclaimed
        f.bytes_reclaimed = r.bytes_reclaimed
        f.containers_swept = r.containers_swept
        f.containers_skipped = r.containers_skipped

    def trigger(self) -> None:
        """Ask the daemon for an immediate sweep (no-op if not running)."""
        self._wakeup.set()

    # -- daemon lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the daemon thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background sweeper.  Idempotent."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="dstampede-gc", daemon=True
        )
        self._thread.start()

    def stop(self, final_sweep: bool = True) -> None:
        """Stop the daemon; optionally run one last synchronous sweep."""
        if self._thread is not None:
            self._stop.set()
            self._wakeup.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_sweep:
            self.sweep()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wakeup.wait(timeout=self.interval)
            self._wakeup.clear()
            if self._stop.is_set():
                break
            try:
                self.sweep()
            except Exception:  # noqa: BLE001 - daemon must survive
                _log.exception("garbage collection sweep failed")

    def __enter__(self) -> "GarbageCollector":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
