"""Declarative selective-attention filters.

The paper's future work (§6): "Extending the selective attention
capability of D-Stampede to perform user defined filtering operations is
another avenue of future research."

Local connections can attach any Python predicate, but an end device's
filter has to execute on the *cluster* — inside its surrogate — or the
filtered items cross the network only to be dropped.  Arbitrary
callables cannot (and should not) travel, so this module provides a
small declarative filter algebra that:

* compiles to an ordinary ``(timestamp, value) -> bool`` predicate for
  the core containers,
* serializes to a codec-domain value (nested dicts), so a client can
  ship it in an ATTACH request and the surrogate rebuilds it, and
* is total and side-effect free by construction — a hostile or buggy
  spec can reject items but cannot run code on the cluster.

Combinators: :class:`TsRange`, :class:`TsModulo`, :class:`SizeAtMost`,
:class:`FieldEquals`, :class:`AllOf`, :class:`AnyOf`, :class:`NotF`.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List

from repro.errors import DecodeError
from repro.core.timestamps import Timestamp

Predicate = Callable[[Timestamp, Any], bool]

#: Registry of spec kind -> parser, populated by ``_register``.
_PARSERS: Dict[str, Callable[[Dict[str, Any]], "AttentionFilter"]] = {}

#: Guard against adversarially deep specs arriving over the wire.
_MAX_DEPTH = 16


class AttentionFilter(abc.ABC):
    """A serializable item predicate."""

    #: Spec discriminator; subclasses override.
    kind: str = ""

    @abc.abstractmethod
    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether this connection wants the item."""

    @abc.abstractmethod
    def to_spec(self) -> Dict[str, Any]:
        """Codec-domain representation (nested dicts/lists/scalars)."""

    def predicate(self) -> Predicate:
        """The callable form the core containers consume."""
        return self.matches

    # -- composition sugar ------------------------------------------------------

    def __and__(self, other: "AttentionFilter") -> "AttentionFilter":
        return AllOf([self, other])

    def __or__(self, other: "AttentionFilter") -> "AttentionFilter":
        return AnyOf([self, other])

    def __invert__(self) -> "AttentionFilter":
        return NotF(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.to_spec()!r}>"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AttentionFilter)
                and self.to_spec() == other.to_spec())

    def __hash__(self) -> int:  # pragma: no cover - dict-key convenience
        return hash(repr(self.to_spec()))


def _register(cls):
    _PARSERS[cls.kind] = cls._from_spec
    return cls


@_register
class TsRange(AttentionFilter):
    """Accept timestamps in ``[low, high)`` (``high=None`` = unbounded)."""

    kind = "ts_range"

    def __init__(self, low: int = 0, high: "int | None" = None) -> None:
        if high is not None and high < low:
            raise ValueError(f"empty range [{low}, {high})")
        self.low = low
        self.high = high

    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether the item passes this filter."""
        if timestamp < self.low:
            return False
        return self.high is None or timestamp < self.high

    def to_spec(self) -> Dict[str, Any]:
        """Codec-domain wire form of this filter."""
        return {"kind": self.kind, "low": self.low, "high": self.high}

    @staticmethod
    def _from_spec(spec: Dict[str, Any]) -> "TsRange":
        return TsRange(low=_int_field(spec, "low"),
                       high=_opt_int_field(spec, "high"))


@_register
class TsModulo(AttentionFilter):
    """Accept timestamps with ``ts % divisor == remainder`` — the
    "every Nth frame" keyframe pattern."""

    kind = "ts_modulo"

    def __init__(self, divisor: int, remainder: int = 0) -> None:
        if divisor <= 0:
            raise ValueError(f"divisor must be positive, got {divisor}")
        if not 0 <= remainder < divisor:
            raise ValueError(
                f"remainder {remainder} out of range for divisor {divisor}"
            )
        self.divisor = divisor
        self.remainder = remainder

    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether the item passes this filter."""
        return timestamp % self.divisor == self.remainder

    def to_spec(self) -> Dict[str, Any]:
        """Codec-domain wire form of this filter."""
        return {"kind": self.kind, "divisor": self.divisor,
                "remainder": self.remainder}

    @staticmethod
    def _from_spec(spec: Dict[str, Any]) -> "TsModulo":
        return TsModulo(divisor=_int_field(spec, "divisor"),
                        remainder=_int_field(spec, "remainder"))


@_register
class SizeAtMost(AttentionFilter):
    """Accept items whose payload is at most *limit* bytes (bytes-like
    values only; other types always pass — size is unknowable)."""

    kind = "size_at_most"

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError(f"negative size limit {limit}")
        self.limit = limit

    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether the item passes this filter."""
        if isinstance(value, (bytes, bytearray, memoryview)):
            return len(value) <= self.limit
        return True

    def to_spec(self) -> Dict[str, Any]:
        """Codec-domain wire form of this filter."""
        return {"kind": self.kind, "limit": self.limit}

    @staticmethod
    def _from_spec(spec: Dict[str, Any]) -> "SizeAtMost":
        return SizeAtMost(limit=_int_field(spec, "limit"))


@_register
class FieldEquals(AttentionFilter):
    """Accept dict values whose ``field`` equals ``expected`` (items that
    are not dicts, or lack the field, are rejected)."""

    kind = "field_equals"

    def __init__(self, field: str, expected: Any) -> None:
        self.field = field
        self.expected = expected

    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether the item passes this filter."""
        if not isinstance(value, dict):
            return False
        sentinel = object()
        return value.get(self.field, sentinel) == self.expected

    def to_spec(self) -> Dict[str, Any]:
        """Codec-domain wire form of this filter."""
        return {"kind": self.kind, "field": self.field,
                "expected": self.expected}

    @staticmethod
    def _from_spec(spec: Dict[str, Any]) -> "FieldEquals":
        if "field" not in spec or not isinstance(spec["field"], str):
            raise DecodeError("field_equals spec needs a string 'field'")
        if "expected" not in spec:
            raise DecodeError("field_equals spec needs 'expected'")
        return FieldEquals(field=spec["field"],
                           expected=spec["expected"])


class _Combinator(AttentionFilter):
    """Shared machinery for AllOf/AnyOf."""

    def __init__(self, members: List[AttentionFilter]) -> None:
        if not members:
            raise ValueError(f"{type(self).__name__} needs members")
        if not all(isinstance(m, AttentionFilter) for m in members):
            raise ValueError("members must be AttentionFilter instances")
        self.members = list(members)

    def to_spec(self) -> Dict[str, Any]:
        """Codec-domain wire form of this filter."""
        return {"kind": self.kind,
                "members": [m.to_spec() for m in self.members]}

    @classmethod
    def _from_spec(cls, spec: Dict[str, Any]):
        members = spec.get("members")
        if not isinstance(members, list) or not members:
            raise DecodeError(f"{cls.kind} spec needs non-empty 'members'")
        return cls([_parse(member, _depth_of(spec) + 1)
                    for member in members])


@_register
class AllOf(_Combinator):
    """Conjunction: every member must accept."""

    kind = "all_of"

    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether the item passes this filter."""
        return all(m.matches(timestamp, value) for m in self.members)


@_register
class AnyOf(_Combinator):
    """Disjunction: any member accepting suffices."""

    kind = "any_of"

    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether the item passes this filter."""
        return any(m.matches(timestamp, value) for m in self.members)


@_register
class NotF(AttentionFilter):
    """Negation."""

    kind = "not"

    def __init__(self, member: AttentionFilter) -> None:
        if not isinstance(member, AttentionFilter):
            raise ValueError("member must be an AttentionFilter")
        self.member = member

    def matches(self, timestamp: Timestamp, value: Any) -> bool:
        """Whether the item passes this filter."""
        return not self.member.matches(timestamp, value)

    def to_spec(self) -> Dict[str, Any]:
        """Codec-domain wire form of this filter."""
        return {"kind": self.kind, "member": self.member.to_spec()}

    @staticmethod
    def _from_spec(spec: Dict[str, Any]) -> "NotF":
        member = spec.get("member")
        if not isinstance(member, dict):
            raise DecodeError("'not' spec needs a 'member' object")
        return NotF(_parse(member, _depth_of(spec) + 1))


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

#: Stash for recursion-depth accounting during nested parses.
_depths: Dict[int, int] = {}


def _depth_of(spec: Dict[str, Any]) -> int:
    return _depths.get(id(spec), 0)


def _parse(spec: Any, depth: int = 0) -> AttentionFilter:
    if depth > _MAX_DEPTH:
        raise DecodeError(
            f"filter spec nests deeper than {_MAX_DEPTH} levels"
        )
    if not isinstance(spec, dict):
        raise DecodeError(f"filter spec must be a dict, got "
                          f"{type(spec).__name__}")
    kind = spec.get("kind")
    parser = _PARSERS.get(kind)  # type: ignore[arg-type]
    if parser is None:
        raise DecodeError(f"unknown filter kind {kind!r}; "
                          f"known: {sorted(_PARSERS)}")
    _depths[id(spec)] = depth
    try:
        parsed = parser(spec)
    except DecodeError:
        raise
    except Exception as exc:  # noqa: BLE001 - hostile spec values
        raise DecodeError(f"invalid {kind!r} filter spec: {exc}") from exc
    finally:
        _depths.pop(id(spec), None)
    return parsed


def filter_from_spec(spec: Any) -> AttentionFilter:
    """Rebuild a filter from its wire form.

    :raises DecodeError: unknown kind, bad fields, or excessive nesting.
    """
    return _parse(spec, depth=0)


def _int_field(spec: Dict[str, Any], name: str) -> int:
    value = spec.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise DecodeError(f"filter field {name!r} must be an integer")
    return value


def _opt_int_field(spec: Dict[str, Any], name: str) -> "int | None":
    value = spec.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise DecodeError(f"filter field {name!r} must be an integer "
                          f"or null")
    return value
