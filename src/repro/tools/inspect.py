"""Inspect a running cluster from the command line.

Connects to a cluster server as an ordinary end device, issues the
INSPECT operation, and renders the snapshot::

    python -m repro.tools.inspect --host 127.0.0.1 --port 7070
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.client.client import StampedeClient


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.inspect",
        description="Print a running D-Stampede cluster's state.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument("--watch", type=float, default=None,
                        help="re-inspect every N seconds until Ctrl-C")
    return parser


def render_remote(state: dict) -> str:
    """Render a snapshot fetched over the wire."""
    from repro.runtime.inspect import render

    return render(state)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    with StampedeClient(args.host, args.port,
                        client_name="inspector") as client:
        if args.watch is None:
            print(render_remote(client.inspect()))
            return 0
        import time

        try:
            while True:
                print(render_remote(client.inspect()))
                print("-" * 60)
                time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
