"""Video-conference demo CLI.

Runs the §4 application end-to-end (cluster, mixer, N participants over
real TCP) and reports per-display verification::

    python -m repro.tools.conference --participants 4 --frames 20
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.apps.videoconf import run_conference
from repro.util.logging import get_logger

_log = get_logger("tools.conference")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.conference",
        description="Run the paper's video-conferencing application.",
    )
    parser.add_argument("--participants", type=int, default=3)
    parser.add_argument("--frames", type=int, default=15)
    parser.add_argument("--image-size", type=int, default=4_000,
                        help="per-camera image bytes (default 4000)")
    parser.add_argument("--mixer", choices=("single", "multi"),
                        default="multi")
    parser.add_argument("--codec", choices=("xdr", "jdr"), default="xdr",
                        help="client personality (C or Java flavour)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    # Progress goes to the component logger; only the verification
    # table below is this tool's product output.
    _log.info(
        "conference: %d participants x %d frames of %d B, "
        "%s-threaded mixer, %s clients",
        args.participants, args.frames, args.image_size,
        args.mixer, args.codec,
    )
    started = time.monotonic()
    result = run_conference(
        participants=args.participants,
        frames=args.frames,
        image_size=args.image_size,
        mixer_mode=args.mixer,
        codec=args.codec,
    )
    elapsed = time.monotonic() - started
    for outcome in result.participants:
        state = "ok" if not outcome.errors else outcome.errors[0]
        print(f"  participant {outcome.participant}: "
              f"{outcome.composites_received} composites, "
              f"{outcome.tiles_verified} tiles verified [{state}]")
    print(f"elapsed: {elapsed:.2f}s; "
          f"all verified: {result.all_verified}")
    return 0 if result.all_verified else 1


if __name__ == "__main__":
    raise SystemExit(main())
