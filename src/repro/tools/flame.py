"""Flamegraph-text renderer for the continuous profiler.

Takes collapsed-stack sample counters (the PROF_DUMP payload of
:mod:`repro.obs.profiler`, possibly merged across shard workers) and
renders them as an indented call tree with per-frame sample percentages
and bars — a flamegraph readable in a terminal, no external tooling::

    python -m repro.tools.flame --host 127.0.0.1 --port 7070
    python -m repro.tools.flame --collapsed dump.txt --min-pct 1.0

Also exposes :func:`merge_collapsed` (sum counters stack-by-stack) and
:func:`render_flame` for programmatic use (``examples/flight_recorder.py``
writes its flamegraph artifact through them).
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "merge_collapsed",
    "parse_collapsed",
    "render_flame",
    "main",
]


def merge_collapsed(dumps: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Sum collapsed-stack counters stack-by-stack.

    Because stacks are function-granular strings, merging across
    processes (shard workers, clients) is exact addition.
    """
    merged: Dict[str, int] = {}
    for dump in dumps:
        for stack, count in dump.items():
            merged[stack] = merged.get(stack, 0) + int(count)
    return merged


def parse_collapsed(text: str) -> Dict[str, int]:
    """Parse classic ``stack count`` collapsed-stack lines."""
    samples: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            continue
        try:
            samples[stack] = samples.get(stack, 0) + int(count)
        except ValueError:
            continue
    return samples


class _Node:
    __slots__ = ("count", "children")

    def __init__(self) -> None:
        self.count = 0
        self.children: Dict[str, "_Node"] = {}


def _build_tree(samples: Mapping[str, int]) -> _Node:
    root = _Node()
    for stack, count in samples.items():
        node = root
        node.count += count
        for frame in stack.split(";"):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node()
            child.count += count
            node = child
    return root


def render_flame(samples: Mapping[str, int], min_pct: float = 0.5,
                 bar_width: int = 20) -> str:
    """Render collapsed-stack counters as indented flamegraph text.

    Frames holding fewer than ``min_pct`` percent of all samples are
    pruned (their time still shows in their ancestors).  Siblings are
    ordered hottest-first.
    """
    total = sum(samples.values())
    if not total:
        return "(no samples)"
    root = _build_tree(samples)
    lines: List[str] = [f"total samples: {total}"]

    def walk(node: _Node, depth: int) -> None:
        ordered = sorted(node.children.items(),
                         key=lambda kv: kv[1].count, reverse=True)
        for frame, child in ordered:
            pct = 100.0 * child.count / total
            if pct < min_pct:
                continue
            bar = "#" * max(1, round(bar_width * child.count / total))
            lines.append(
                f"{pct:6.2f}% {bar:<{bar_width}} "
                f"{'  ' * depth}{frame} ({child.count})")
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.flame",
        description="Render a cluster's continuous-profiler samples as "
                    "flamegraph text.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument("--collapsed", action="append", default=[],
                        metavar="FILE",
                        help="render/merge collapsed-stack file(s) "
                             "instead of querying a server")
    parser.add_argument("--min-pct", type=float, default=0.5,
                        help="prune frames below this percent of "
                             "samples (default 0.5)")
    parser.add_argument("--clear", action="store_true",
                        help="reset the server's sample counters after "
                             "the read")
    parser.add_argument("--json", action="store_true",
                        help="print the raw profile payload instead of "
                             "the rendering")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.collapsed:
        dumps = []
        for path in args.collapsed:
            with open(path, "r", encoding="utf-8") as fh:
                dumps.append(parse_collapsed(fh.read()))
        samples = merge_collapsed(dumps)
        payload: Dict[str, Any] = {"samples": samples,
                                   "sample_count": sum(samples.values())}
    else:
        from repro.client.client import StampedeClient

        with StampedeClient(args.host, args.port,
                            client_name="flame") as client:
            payload = client.prof_dump(clear=args.clear)
        samples = payload.get("samples", {})
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(render_flame(samples, min_pct=args.min_pct))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
