"""Standalone cluster server.

Runs the server library as its own process so end devices (and peer
clusters via federation bridges) can join from anywhere::

    python -m repro.tools.server --port 7070 --spaces N1,N2 --lease 30

The process serves until interrupted, printing join/leave activity; with
``--trace`` the runtime's event ring is dumped on shutdown.
"""

from __future__ import annotations

import argparse
import signal
import threading
from typing import List, Optional

from repro.runtime.runtime import Runtime
from repro.runtime.server import StampedeServer
from repro.util.logging import configure_debug_logging
from repro.util.trace import enable_tracing


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.server",
        description="Run a standalone D-Stampede cluster server.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="listen address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7070,
                        help="listen port (0 = ephemeral; default 7070)")
    parser.add_argument(
        "--spaces", default="N1",
        help="comma-separated device address spaces (default N1)",
    )
    parser.add_argument(
        "--lease", type=float, default=None,
        help="surrogate lease timeout in seconds (default: no reaping)",
    )
    parser.add_argument(
        "--gc-interval", type=float, default=0.05,
        help="garbage-collector sweep period (default 0.05s)",
    )
    parser.add_argument("--trace", action="store_true",
                        help="record runtime events; dump on shutdown")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the runtime's info logging")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; serves until interrupted."""
    args = build_parser().parse_args(argv)
    if not args.quiet:
        configure_debug_logging()
    tracer = enable_tracing() if args.trace else None

    runtime = Runtime(name="standalone", gc_interval=args.gc_interval)
    spaces = [s.strip() for s in args.spaces.split(",") if s.strip()]
    server = StampedeServer(
        runtime, host=args.host, port=args.port,
        device_spaces=spaces or None, lease_timeout=args.lease,
    ).start()
    host, port = server.address
    print(f"D-Stampede cluster serving on {host}:{port} "
          f"(spaces: {', '.join(spaces)};"
          f" lease: {args.lease if args.lease else 'off'})")
    print("press Ctrl-C to stop")

    stop = threading.Event()

    def handle_signal(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, handle_signal)
    signal.signal(signal.SIGTERM, handle_signal)
    stop.wait()

    print("\nshutting down...")
    server.close()
    runtime.shutdown()
    if tracer is not None:
        print("\n--- runtime event trace ---")
        print(tracer.dump(limit=200))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
