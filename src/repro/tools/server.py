"""Standalone cluster server.

Runs the server library as its own process so end devices (and peer
clusters via federation bridges) can join from anywhere::

    python -m repro.tools.server --port 7070 --spaces N1,N2 --lease 30

The process serves until interrupted, printing join/leave activity; with
``--trace`` the runtime's event ring is dumped on shutdown.
"""

from __future__ import annotations

import argparse
import signal
import threading
from typing import List, Optional

from repro.runtime.runtime import Runtime
from repro.runtime.server import StampedeServer
from repro.util.logging import configure_debug_logging, get_logger
from repro.util.trace import enable_tracing

_log = get_logger("tools.server")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.server",
        description="Run a standalone D-Stampede cluster server.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="listen address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7070,
                        help="listen port (0 = ephemeral; default 7070)")
    parser.add_argument(
        "--spaces", default="N1",
        help="comma-separated device address spaces (default N1)",
    )
    parser.add_argument(
        "--lease", type=float, default=None,
        help="surrogate lease timeout in seconds (default: no reaping)",
    )
    parser.add_argument(
        "--lanes", type=int, default=None,
        help="execution lane threads shared by all devices (default: "
             "$DSTAMPEDE_LANES, else min(32, 4*cpu))",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="worker processes sharing the port via SO_REUSEPORT, each "
             "owning a hash slice of the containers (default: "
             "$DSTAMPEDE_SHARDS, else 1)",
    )
    parser.add_argument(
        "--gc-interval", type=float, default=0.05,
        help="garbage-collector sweep period (default 0.05s)",
    )
    parser.add_argument("--trace", action="store_true",
                        help="record runtime events; dump on shutdown")
    parser.add_argument("--metrics", action="store_true",
                        help="enable the metrics registry (served via "
                             "the STATS wire op)")
    parser.add_argument(
        "--watchdog", type=float, default=None, metavar="SECONDS",
        help="run the stall watchdog: flag items older than SECONDS "
             "and reactor-loop lag (implies --metrics)",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the runtime's info logging")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; serves until interrupted."""
    args = build_parser().parse_args(argv)
    if not args.quiet:
        configure_debug_logging()
    tracer = enable_tracing() if args.trace else None
    if args.metrics or args.watchdog is not None:
        from repro.obs.metrics import enable_metrics

        enable_metrics()

    runtime = Runtime(name="standalone", gc_interval=args.gc_interval)
    spaces = [s.strip() for s in args.spaces.split(",") if s.strip()]
    server = StampedeServer(
        runtime, host=args.host, port=args.port,
        device_spaces=spaces or None, lease_timeout=args.lease,
        lanes=args.lanes, shards=args.shards,
    ).start()
    watchdog = None
    if args.watchdog is not None:
        from repro.obs.watchdog import StallWatchdog

        watchdog = StallWatchdog(
            runtime=runtime, reactor=server.reactor,
            max_oldest_age=args.watchdog,
            on_stall=lambda stall: _log.warning("STALL: %s",
                                                stall.describe()),
        ).start()
    host, port = server.address
    _log.info(
        "D-Stampede cluster serving on %s:%d (spaces: %s; lease: %s) — "
        "press Ctrl-C to stop",
        host, port, ", ".join(spaces),
        args.lease if args.lease else "off",
    )

    stop = threading.Event()

    def handle_signal(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, handle_signal)
    signal.signal(signal.SIGTERM, handle_signal)
    stop.wait()

    _log.info("shutting down")
    if watchdog is not None:
        watchdog.stop()
    server.close()
    runtime.shutdown()
    if tracer is not None:
        print("\n--- runtime event trace ---")
        print(tracer.dump(limit=200))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
