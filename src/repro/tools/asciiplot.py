"""Minimal ASCII line plots for terminal figure output.

The figure tools render each regenerated curve as a small character
chart so the *shape* the paper argues — orderings, gaps, crossovers —
is visible straight from the command line, no plotting stack required.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Glyphs assigned to series in declaration order.
GLYPHS = "*o+x#@%&"


def render(series: Dict[str, List[Tuple[float, float]]],
           width: int = 72, height: int = 20,
           x_label: str = "", y_label: str = "") -> str:
    """Render named ``[(x, y), ...]`` series into one ASCII chart.

    Series share axes; each gets a glyph from :data:`GLYPHS` (later
    series overwrite earlier ones on collisions, so list the headline
    series last).

    :raises ValueError: no data, or non-positive dimensions.
    """
    if width < 16 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")
    points = [(x, y) for curve in series.values() for x, y in curve]
    if not points:
        raise ValueError("nothing to plot")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, curve) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in curve:
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][column] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:>10.0f} |"
        elif row_index == height - 1:
            label = f"{y_min:>10.0f} |"
        else:
            label = "           |"
        lines.append(label + "".join(row))
    lines.append("           +" + "-" * width)
    x_axis = (f"{'':11}{x_min:<12.0f}"
              f"{x_label:^{max(0, width - 24)}}"
              f"{x_max:>12.0f}")
    lines.append(x_axis)
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':11}{legend}")
    return "\n".join(lines)
