"""Regenerate every evaluation figure and Table 1 from the command line.

Writes the same CSV series the benchmark harness produces and renders
each figure as an ASCII chart::

    python -m repro.tools.figures --out results/ --step 2000
"""

from __future__ import annotations

import argparse
import csv
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.simnet.params import DEFAULT_PARAMS
from repro.simnet.stampede_model import MicroModel
from repro.simnet.workload import (
    FIG14_IMAGE_SIZES,
    PAPER_IMAGE_SIZES,
    figure14_sweep,
    figure15_sweep,
    table1,
)
from repro.tools.asciiplot import render

Series = Dict[str, List[Tuple[float, float]]]


def _write_csv(path: Path, header: List[str], rows: List[tuple]) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    print(f"  wrote {path}")


def _micro_figure(name: str, curves: Dict, out: Path,
                  order: List[str]) -> None:
    sizes = [p.size for p in curves[order[0]]]
    rows = [
        tuple([size] + [curves[key][i].latency_us for key in order])
        for i, size in enumerate(sizes)
    ]
    _write_csv(out / f"{name}.csv",
               ["size_bytes"] + [f"{key}_us" for key in order], rows)
    series: Series = {
        key: [(p.size, p.latency_us) for p in curves[key]]
        for key in order
    }
    print(render(series, x_label="payload (bytes)",
                 y_label=f"{name}: latency (µs)"))
    print()


def generate_micro_figures(out: Path, step: int) -> None:
    """Regenerate Figures 11-13 (CSV + ASCII charts)."""
    model = MicroModel(DEFAULT_PARAMS)
    print("Figure 11 — Experiment 1 (intra-cluster):")
    _micro_figure("fig11_intra_cluster", model.figure11(step), out,
                  ["udp", "tcp", "dstampede"])
    print("Figure 12 — Experiment 2 (C client):")
    _micro_figure("fig12_c_client", model.figure12(step), out,
                  ["tcp", "config1", "config2", "config3"])
    print("Figure 13 — Experiment 3 (Java client):")
    _micro_figure("fig13_java_client", model.figure13(step), out,
                  ["tcp", "config1", "config2", "config3"])


def generate_app_figures(out: Path, frames: int) -> None:
    """Regenerate Figures 14-15 and Table 1."""
    print("Figure 14 — single-threaded mixer (2 clients):")
    fig14 = figure14_sweep(frames=frames)
    rows = [
        (size, fig14["socket"][i].fps, fig14["single"][i].fps)
        for i, size in enumerate(FIG14_IMAGE_SIZES)
    ]
    _write_csv(out / "fig14_single_threaded.csv",
               ["image_size_bytes", "socket_fps", "dstampede_fps"], rows)
    print(render(
        {
            "socket": [(s, fig14["socket"][i].fps)
                       for i, s in enumerate(FIG14_IMAGE_SIZES)],
            "dstampede": [(s, fig14["single"][i].fps)
                          for i, s in enumerate(FIG14_IMAGE_SIZES)],
        },
        x_label="image size (bytes)", y_label="fig14: sustained f/s",
    ))
    print()

    print("Figure 15 — multi-threaded mixer:")
    fig15 = figure15_sweep(max_clients=7, frames=frames)
    clients = list(range(2, 8))
    rows = [
        tuple([k] + [fig15[size][i].fps for size in PAPER_IMAGE_SIZES])
        for i, k in enumerate(clients)
    ]
    _write_csv(out / "fig15_multi_threaded.csv",
               ["clients"] + [f"{s // 1000}KB_fps"
                              for s in PAPER_IMAGE_SIZES], rows)
    print(render(
        {
            f"{size // 1000}KB": [
                (k, fig15[size][i].fps)
                for i, k in enumerate(clients)
                if fig15[size][i].fps >= 10.0  # the paper's floor
            ]
            for size in PAPER_IMAGE_SIZES
        },
        x_label="participants", y_label="fig15: sustained f/s (>=10)",
    ))
    print()

    print("Table 1 — delivered bandwidth K^2*S*F (MB/s):")
    bandwidth = table1(fig15)
    rows = [
        tuple([size // 1000] + [round(b, 1) for b in bandwidth[size]])
        for size in PAPER_IMAGE_SIZES
    ]
    _write_csv(out / "table1_bandwidth.csv",
               ["image_size_kb"] + [f"K={k}" for k in clients], rows)
    header = "  size KB " + "".join(f"{f'K={k}':>8}" for k in clients)
    print(header)
    for row in rows:
        print(f"  {row[0]:>7} " + "".join(f"{v:>8}" for v in row[1:]))


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.figures",
        description="Regenerate the paper's evaluation figures and table.",
    )
    parser.add_argument("--out", default="figure-results",
                        help="output directory for CSVs")
    parser.add_argument("--step", type=int, default=1000,
                        help="payload sweep step for Figs. 11-13")
    parser.add_argument("--frames", type=int, default=60,
                        help="simulated frames per app-level run")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    generate_micro_figures(out, args.step)
    generate_app_figures(out, args.frames)
    print(f"\nall series written to {out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
