"""Command-line tools.

* ``python -m repro.tools.server`` — run a standalone cluster server that
  end devices (and peer clusters) join over TCP;
* ``python -m repro.tools.conference`` — run the §4 video-conference
  demo end-to-end and report verification results;
* ``python -m repro.tools.figures`` — regenerate every evaluation figure
  and Table 1 as CSV plus terminal ASCII plots, without pytest.
"""
