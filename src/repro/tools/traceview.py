"""Interleave trace dumps from multiple address spaces into one timeline.

Each input file is a JSON TRACE_DUMP payload (what
``StampedeClient.trace_dump()`` returns, saved with ``json.dump``) or a
bare JSON list of exported events (``Tracer.export()``).  Events are
merged by :meth:`repro.util.trace.Tracer.merge` and rendered
chronologically, each line tagged with the file it came from, so one
logical operation — a put travelling client → surrogate → container →
GC — reads top to bottom::

    python -m repro.tools.traceview client.json cluster.json
    python -m repro.tools.traceview --trace-id 3fa9c1d2 *.json

Timestamps are ``time.monotonic`` values; interleaving is meaningful for
dumps taken on the same host (the videoconf experiments and the test
rig), which is where multi-space debugging happens in this repro.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any, Dict, List, Optional

from repro.util.trace import Tracer


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.traceview",
        description="Merge and render trace dumps from several spaces.",
    )
    parser.add_argument("files", nargs="+",
                        help="JSON trace dumps (TRACE_DUMP payloads or "
                             "exported event lists)")
    parser.add_argument("--trace-id", default=None,
                        help="show only events of one trace id")
    parser.add_argument("--category", default=None,
                        help="show only one event category (put, rpc, "
                             "reclaim, stall, ...)")
    parser.add_argument("--limit", type=int, default=0,
                        help="show only the newest N merged events")
    return parser


def _load_events(path: str) -> List[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        return payload.get("events", [])
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    streams: Dict[str, List[Dict[str, Any]]] = {}
    for path in args.files:
        label = os.path.splitext(os.path.basename(path))[0]
        # Two files with the same stem stay distinguishable.
        key = label
        serial = 1
        while key in streams:
            serial += 1
            key = f"{label}#{serial}"
        streams[key] = _load_events(path)
    merged = Tracer.merge(streams)
    if args.trace_id:
        merged = [e for e in merged
                  if e.trace_id and e.trace_id.startswith(args.trace_id)]
    if args.category:
        merged = [e for e in merged if e.category == args.category]
    if args.limit:
        merged = merged[-args.limit:]
    if not merged:
        print("(no matching events)")
        return 1
    print(Tracer.render_merged(merged))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
