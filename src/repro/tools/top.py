"""Live cluster dashboard (curses-free ``top`` for a D-Stampede cluster).

Connects as an ordinary end device, polls the STATS wire op, and renders
the flight recorder's view of the cluster: reactor health, GC activity,
per-container occupancy and age (with stall suspects), and the hottest
RPC operations by p95 latency::

    python -m repro.tools.top --host 127.0.0.1 --port 7070
    python -m repro.tools.top --once --json    # one machine-readable shot
    python -m repro.tools.top --once --prom    # Prometheus text format

The server must run with metrics enabled (``--metrics`` on
``repro.tools.server``, or ``DSTAMPEDE_METRICS=1``); without them the
dashboard still shows container occupancy, which comes from container
state rather than the registry.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Dict, List, Optional

from repro.client.client import StampedeClient


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.top",
        description="Live observability dashboard for a running cluster.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit")
    parser.add_argument("--json", action="store_true",
                        help="raw JSON snapshot instead of the dashboard")
    parser.add_argument("--prom", action="store_true",
                        help="Prometheus text format instead of the "
                             "dashboard (implies --once semantics per "
                             "scrape)")
    parser.add_argument("--top-ops", type=int, default=8,
                        help="RPC ops shown in the latency table")
    return parser


def _fmt_us(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}ms"
    return f"{value:.0f}us"


def _fmt_age(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}s"


def _journeys(snap: Dict[str, Any]) -> Dict[str, Any]:
    """Per-channel hop breakdowns from the STATS spans section."""
    section = snap.get("spans")
    if not section:
        return {}
    from repro.obs.spans import journey_breakdown

    return journey_breakdown(section)


def render_dashboard(snap: Dict[str, Any], top_ops: int = 8) -> str:
    """Render one STATS payload as the text dashboard."""
    metrics = snap.get("metrics", {})
    counters = metrics.get("counters", {})
    hists = metrics.get("histograms", {})
    lines: List[str] = []
    lines.append(
        f"cluster {snap.get('runtime', '?')!r} — metrics "
        f"{'on' if metrics.get('enabled') else 'OFF'}"
    )
    if snap.get("shards", 1) > 1:
        lines.append(
            f"shards: {snap['shards']} worker processes "
            "(counters summed, histograms merged across shards)"
        )

    lag = hists.get("runtime.reactor.timer_lag_us", {})
    lines.append(
        "reactor: "
        f"{counters.get('runtime.reactor.wakeups', 0)} wakeups, "
        f"timer lag p95 {_fmt_us(lag.get('p95'))} "
        f"max {_fmt_us(lag.get('max'))}"
    )

    sweep = hists.get("core.gc.sweep_us", {})
    swept = counters.get("core.gc.containers_swept", 0)
    skipped = counters.get("core.gc.containers_skipped", 0)
    visited = swept + skipped
    skip_ratio = f"{skipped / visited:.0%}" if visited else "-"
    lines.append(
        f"gc: {counters.get('core.gc.sweeps', 0)} sweeps "
        f"(p95 {_fmt_us(sweep.get('p95'))}), "
        f"{counters.get('core.gc.items_reclaimed', 0)} items / "
        f"{counters.get('core.gc.bytes_reclaimed', 0)} B reclaimed, "
        f"dirty-skip {skip_ratio}"
    )
    lines.append(
        f"wire: {counters.get('transport.frames_in', 0)} frames in / "
        f"{counters.get('transport.frames_out', 0)} out, "
        f"{counters.get('transport.bytes_in', 0)} B in / "
        f"{counters.get('transport.bytes_out', 0)} B out, "
        f"{counters.get('transport.partial_reads', 0)} partial reads"
    )

    gauges = metrics.get("gauges", {})
    if counters.get("transport.shm.bytes_out") \
            or counters.get("transport.shm.bytes_in") \
            or gauges.get("transport.shm.links"):
        # The shared-memory data plane between co-host shards: ring
        # traffic, doorbell activity and ring-full backpressure.
        park = hists.get("transport.shm.park_wait_us", {})
        lines.append(
            f"shm: {counters.get('transport.shm.frames_out', 0)} "
            f"frames out, "
            f"{counters.get('transport.shm.bytes_out', 0)} B out / "
            f"{counters.get('transport.shm.bytes_in', 0)} B in, "
            f"occupancy {gauges.get('transport.shm.ring_occupancy', 0):.0f} B, "
            f"{counters.get('transport.shm.doorbell_wakeups', 0)} doorbell "
            f"wakeups, "
            f"{counters.get('transport.shm.ring_full_parks', 0)} parks "
            f"(p95 {_fmt_us(park.get('p95'))})"
        )
    depth = hists.get("runtime.lanes.queue_depth", {})
    hits = counters.get("core.encode_cache.hits", 0)
    misses = counters.get("core.encode_cache.misses", 0)
    encodes = hits + misses
    hit_ratio = f"{hits / encodes:.0%}" if encodes else "-"
    lines.append(
        f"lanes: {gauges.get('runtime.lanes.count', '-')} "
        f"({gauges.get('runtime.lanes.busy', 0)} busy, "
        f"depth {gauges.get('runtime.lanes.depth', 0)}, "
        f"p95 {depth.get('p95', 0) or 0:.0f}), "
        f"{counters.get('runtime.lanes.executed', 0)} ops run, "
        f"{counters.get('runtime.lanes.suspends', 0)} suspends; "
        f"encode-cache {hits}/{encodes} hits ({hit_ratio})"
    )

    e2e = snap.get("spans", {}).get("e2e", {})
    sharded = snap.get("shards", 1) > 1
    lines.append("")
    lines.append(f"{'container':<24}{'kind':<9}{'live':>6}{'bytes':>10}"
                 f"{'puts':>8}{'reclaim':>8}{'oldest':>9}{'e2e p99':>10}"
                 + ("{:>6}".format("shard") if sharded else "")
                 + "  blocked-by")
    for entry in snap.get("containers", []):
        suspects = ", ".join(
            str(s.get("owner") or f"conn-{s.get('connection_id')}")
            for s in entry.get("blocking", [])
        )
        lines.append(
            f"{entry['name']:<24.24}{entry['kind']:<9}"
            f"{entry['live_items']:>6}{entry['live_bytes']:>10}"
            f"{entry['puts']:>8}{entry['reclaimed']:>8}"
            f"{_fmt_age(entry.get('oldest_age')):>9}"
            f"{_fmt_us(e2e.get(entry['name'], {}).get('p99')):>10}"
            + (f"{entry.get('shard', '-'):>6}" if sharded else "")
            + f"  {suspects}"
        )
    if sharded:
        # One breakdown row per shard: where the data and the load
        # actually sit, so a hot shard is visible at a glance.
        per_shard: Dict[Any, Dict[str, int]] = {}
        for entry in snap.get("containers", []):
            row = per_shard.setdefault(
                entry.get("shard", "-"),
                {"containers": 0, "live": 0, "bytes": 0, "puts": 0})
            row["containers"] += 1
            row["live"] += entry.get("live_items", 0)
            row["bytes"] += entry.get("live_bytes", 0)
            row["puts"] += entry.get("puts", 0)
        # Peer-link transport column: which data plane each shard's
        # dialled links ride ("shm:2" = two SHM links, etc.).
        link_map = snap.get("peer_links", {})
        lines.append("")
        lines.append(f"{'shard':<8}{'containers':>11}{'live':>8}"
                     f"{'bytes':>12}{'puts':>10}  peer-links")
        for shard in sorted(per_shard, key=str):
            row = per_shard[shard]
            links = link_map.get(str(shard), {})
            by_kind: Dict[str, int] = {}
            for kind in links.values():
                by_kind[kind] = by_kind.get(kind, 0) + 1
            rendered = " ".join(
                f"{kind}:{count}"
                for kind, count in sorted(by_kind.items())) or "-"
            lines.append(
                f"{shard!s:<8}{row['containers']:>11}{row['live']:>8}"
                f"{row['bytes']:>12}{row['puts']:>10}  {rendered}"
            )

    journeys = _journeys(snap)
    if journeys:
        lines.append("")
        lines.append(f"{'item journey':<24}{'e2e p50':>10}"
                     f"{'slowest hop':>18}{'cost':>10}")
        for subject, detail in sorted(journeys.items()):
            lines.append(
                f"{subject:<24.24}"
                f"{_fmt_us(detail.get('e2e_p50_us')):>10}"
                f"{detail.get('slowest_hop') or '-':>18}"
                f"{_fmt_us(detail.get('slowest_delta_us')):>10}"
            )

    slo = snap.get("slo", {})
    if slo.get("status"):
        lines.append("")
        lines.append(f"{'slo (channel/objective)':<34}{'measured':>12}"
                     f"{'target':>10}{'burn':>8}  state")
        for row in slo["status"]:
            measured = row.get("measured")
            lines.append(
                f"{row.get('channel', '?') + '/' + row.get('objective', '?'):<34.34}"
                f"{'-' if measured is None else f'{measured:.4g}':>12}"
                f"{row.get('target', 0):>10.4g}"
                f"{row.get('burn_rate', 0):>8.2f}"
                f"  {'BREACH' if row.get('breaching') else 'ok'}"
            )
        lines.append(f"slo breaches since start: {slo.get('breaches', 0)}")

    server_ops = [
        (name[len("rpc.server."):-len("_us")], hist)
        for name, hist in hists.items()
        if name.startswith("rpc.server.") and name.endswith("_us")
    ]
    if server_ops:
        server_ops.sort(key=lambda pair: pair[1].get("p95", 0),
                        reverse=True)
        lines.append("")
        lines.append(f"{'rpc op (server)':<24}{'count':>8}{'p50':>10}"
                     f"{'p95':>10}{'max':>10}")
        for name, hist in server_ops[:top_ops]:
            lines.append(
                f"{name:<24}{hist.get('count', 0):>8}"
                f"{_fmt_us(hist.get('p50')):>10}"
                f"{_fmt_us(hist.get('p95')):>10}"
                f"{_fmt_us(hist.get('max')):>10}"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    with StampedeClient(args.host, args.port,
                        client_name="top") as client:
        while True:
            snap = client.stats()
            if args.json:
                print(json.dumps(snap, indent=2, default=str))
            elif args.prom:
                from repro.obs.prom import render

                # The whole payload: the exporter adds the per-channel
                # e2e histograms and SLO series when present.
                print(render(snap), end="")
            else:
                print(render_dashboard(snap, top_ops=args.top_ops))
            if args.once:
                return 0
            print("-" * 72)
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0


if __name__ == "__main__":
    raise SystemExit(main())
