#!/usr/bin/env python3
"""Quickstart: space-time memory in five minutes.

Demonstrates the core abstractions on an in-process cluster:

* channels (random access by timestamp) and queues (FIFO),
* virtual-time markers (NEWEST / OLDEST),
* per-connection consumption driving automatic garbage collection,
* address-space isolation (values are marshalled, never shared).

Run:  python examples/quickstart.py
"""

from repro import ConnectionMode, NEWEST, OLDEST, StampedeApp


def main() -> None:
    # A cluster with two address spaces: a producer space and an
    # analysis space, as in the Octopus model's "body".
    with StampedeApp(name="quickstart",
                     address_spaces=["sensors", "analysis"]) as app:

        # -- channels: temporally indexed stream storage -------------------
        app.create_channel("video", space="sensors")
        camera = app.attach("video", ConnectionMode.OUT,
                            from_space="sensors")
        analyzer = app.attach("video", ConnectionMode.IN,
                              from_space="analysis")

        for frame_number in range(5):
            camera.put(frame_number, {
                "pixels": bytes([frame_number]) * 8,
                "label": f"frame-{frame_number}",
            })

        # Random access by timestamp...
        ts, frame = analyzer.get(3)
        print(f"frame at t=3: {frame['label']}")

        # ...or by virtual-time marker.
        ts, newest = analyzer.get(NEWEST)
        print(f"newest frame: t={ts} ({newest['label']})")

        # Consumption declares garbage per consumer; the runtime reclaims
        # items once every attached input connection is done with them.
        analyzer.consume_until(4)  # done with everything before t=4
        print("live after consume_until(4):",
              app.runtime.lookup_container("video").live_timestamps())

        # -- queues: FIFO work-sharing for data parallelism ------------------
        app.create_queue("fragments", space="analysis")
        splitter = app.attach("fragments", ConnectionMode.OUT,
                              from_space="analysis")
        worker_a = app.attach("fragments", ConnectionMode.IN,
                              from_space="analysis")
        worker_b = app.attach("fragments", ConnectionMode.IN,
                              from_space="analysis")

        # Fragments of one frame share its timestamp (Figure 3).
        for index in range(4):
            splitter.put(7, f"frame7-fragment{index}")

        # Each item is delivered to exactly one worker.
        print("worker A got:", worker_a.get(OLDEST)[1])
        print("worker B got:", worker_b.get(OLDEST)[1])
        worker_a.consume(7)
        worker_b.consume(7)

        # -- the name server makes everything discoverable --------------------
        print("registered names:",
              [record.name for record in app.nameserver.list()])


if __name__ == "__main__":
    main()
