#!/usr/bin/env python3
"""The flight recorder end to end: STATS, TRACE_DUMP, and a merged trace.

Spins up a loopback cluster, runs a short traced video pipeline, then
interrogates it the way an operator would:

* ``client.stats()`` — the STATS wire op: metrics-registry snapshot
  plus per-container occupancy and blocking-connection suspects, served
  off the surrogate's execution lanes so it answers even when the application
  is wedged;
* ``client.trace_dump()`` — the cluster's trace ring over the wire;
* ``Tracer.merge`` — the client's local ring interleaved with the
  cluster's onto one timeline, so a single logical put reads top to
  bottom across the address-space boundary;
* ``client.span_dump()`` — the item provenance ring: every hop each
  stamped item took (client put, lane dequeue, container insert,
  consume, GC reclaim) with offsets from the origin put;
* ``client.prof_dump()`` — the continuous profiler's collapsed stacks,
  rendered as flamegraph text.

An intentionally unmeetable SLO on the video channel (10 microsecond
e2e p99) makes the STATS snapshot carry a live breach, so the artifact
shows the SLO engine's output shape too.

With an output directory argument the artifacts are written to disk
(``stats.json``, ``client_trace.json``, ``cluster_trace.json``,
``merged_trace.txt``, ``span_timeline.txt``, ``flamegraph.txt``) — CI
uploads these from every push, so a sample snapshot, a correlated
cross-space trace, an item journey timeline, and a flamegraph are
always one click away.

Run:  python examples/flight_recorder.py [output_dir]
"""

import json
import sys
import time
from pathlib import Path

from repro import ConnectionMode, Runtime, StampedeClient, StampedeServer
from repro.obs.metrics import enable_metrics
from repro.obs.profiler import GLOBAL_PROFILER, start_profiler, stop_profiler
from repro.obs.slo import GLOBAL_SLO, SloTarget
from repro.obs.spans import enable_spans, journey_breakdown, render_timeline
from repro.tools.flame import render_flame
from repro.util.trace import GLOBAL_TRACER, enable_tracing, trace_context

#: Enough frames that the sampled hot-path probes (1-in-64) fire and
#: show up in the STATS snapshot.
FRAMES = 96


def run_pipeline(client: StampedeClient) -> str:
    """A short camera->display exchange; returns the last put's trace id."""
    client.create_channel("video", capacity=32)
    out = client.attach("video", ConnectionMode.OUT)
    inp = client.attach("video", ConnectionMode.IN)
    last_tid = ""
    for ts in range(FRAMES):
        with trace_context() as tid:
            out.put(ts, b"frame-%d" % ts)
            last_tid = tid
        inp.get(ts)
        inp.consume(ts)
    time.sleep(0.1)  # let the collector reclaim the consumed frames
    return last_tid


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    enable_metrics()
    tracer = enable_tracing(capacity=4096)
    tracer.clear()
    spans = enable_spans()
    spans.clear()
    # A 10us e2e p99 no loopback run can meet: the STATS artifact then
    # carries a live SLO breach alongside the healthy series.
    GLOBAL_SLO.add_target(SloTarget(channel="video", e2e_p99_ms=0.01))
    start_profiler(interval=0.002)

    runtime = Runtime(gc_interval=0.02)
    server = StampedeServer(runtime, device_spaces=["N1"]).start()
    host, port = server.address
    try:
        with StampedeClient(host, port, client_name="camera-0") as client:
            tid = run_pipeline(client)
            stats = client.stats()
            cluster_trace = client.trace_dump()
            span_dump = client.span_dump()
            GLOBAL_PROFILER.sample_once()  # at least one stack, even if
            profile = client.prof_dump()   # the run beat the sampler
    finally:
        server.close()
        runtime.shutdown()
        stop_profiler()

    # Loopback caveat: client and cluster share this process, hence one
    # trace ring.  Keep only the client *side* of the RPC events in the
    # client stream, as a real remote device's own ring would hold, so
    # the merged timeline reads like the two-process deployment.
    client_events = [e for e in GLOBAL_TRACER.export()
                     if e.get("category") == "rpc"
                     and e.get("details", {}).get("side") == "client"]
    client_trace = {"label": "camera-0", "events": client_events}
    from repro.util.trace import Tracer
    merged = Tracer.merge({
        "camera-0": client_events,
        "cluster": cluster_trace["events"],
    })
    span = [e for e in merged if e.trace_id == tid]
    rendered = Tracer.render_merged(merged)

    timeline = render_timeline(span_dump.get("spans", []))
    journeys = journey_breakdown(span_dump)
    flamegraph = render_flame(profile.get("samples", {}), min_pct=0.5)

    metrics = stats.get("metrics", {})
    print(f"rpc batches: {metrics.get('counters', {}).get('rpc.server.batches', 0)}  "
          f"probes sampled: {sorted(metrics.get('probes', {}))}  "
          f"containers: {len(stats.get('containers', []))}  "
          f"trace events merged: {len(merged)}")
    print(f"\nlast put's cross-space span (trace id {tid}):")
    print(Tracer.render_merged(span) if span else "(not captured)")

    for subject, journey in journeys.items():
        print(f"\nitem journey [{subject}]: e2e p50 "
              f"{journey['e2e_p50_us']:.1f}us, slowest hop "
              f"{journey['slowest_hop']} "
              f"(+{journey['slowest_delta_us']:.1f}us)")
    breaches = stats.get("slo", {}).get("breaches", 0)
    print(f"slo breaches: {breaches}  "
          f"profiler samples: {profile.get('sample_count', 0)}")

    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "stats.json").write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n")
        (out_dir / "cluster_trace.json").write_text(
            json.dumps(cluster_trace, indent=2) + "\n")
        (out_dir / "client_trace.json").write_text(
            json.dumps(client_trace, indent=2) + "\n")
        (out_dir / "merged_trace.txt").write_text(rendered + "\n")
        journey_lines = [
            f"{subject}: e2e p50 {j['e2e_p50_us']:.1f}us, slowest hop "
            f"{j['slowest_hop']} (+{j['slowest_delta_us']:.1f}us)"
            for subject, j in journeys.items()]
        (out_dir / "span_timeline.txt").write_text(
            timeline + "\n\n" + "\n".join(journey_lines) + "\n")
        (out_dir / "flamegraph.txt").write_text(flamegraph + "\n")
        print(f"\nartifacts written to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
