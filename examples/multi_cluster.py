#!/usr/bin/env python3
"""Multi-cluster federation: the paper's first future-work item.

§6: "we would like to extend the D-Stampede system to support multiple
heterogeneous clusters connected to a plethora of end devices
participating in the same D-Stampede application."

This example federates three clusters — a *capture* cluster near the
sensors, an *analysis* cluster with the compute, and an *archive*
cluster — into one application:

1. an end device (camera) joins the capture cluster over TCP;
2. capture relays frames to a channel on the analysis cluster using a
   qualified name (``analysis!frames``);
3. analysis processes each frame and fans results out to the archive
   cluster and back to a viewer device on capture;
4. the clusters are *heterogeneous*: the capture→analysis bridge speaks
   XDR, the analysis→archive bridge speaks JDR.

Run:  python examples/multi_cluster.py
"""

from repro import ConnectionMode, FederatedRuntime, StampedeClient

FRAMES = 8


def main() -> None:
    capture = FederatedRuntime("capture", bridge_codec="xdr")
    analysis = FederatedRuntime("analysis")
    archive = FederatedRuntime("archive", bridge_codec="jdr")

    try:
        # Wire the federation (heterogeneous codecs per bridge).
        capture.connect_cluster("analysis", *analysis.address)
        analysis.bridge_codec = "jdr"
        analysis.connect_cluster("archive", *archive.address)
        analysis.connect_cluster("capture", *capture.address)

        # Channels on their home clusters.
        capture.create_channel("raw")          # camera frames land here
        analysis.create_channel("frames")      # relayed for processing
        analysis.create_channel("results")
        archive.create_channel("vault")
        capture.create_channel("viewer")

        print("federation:",
              {k: v for k, v in
               capture.federation_names(kind="channel").items()})

        # --- a camera end device joins the capture cluster ---------------
        host, port = capture.address
        camera = StampedeClient(host, port, client_name="camera")
        cam_out = camera.attach("raw", ConnectionMode.OUT)
        for ts in range(FRAMES):
            cam_out.put(ts, {"frame": ts, "pixels": bytes([ts]) * 64})

        # --- capture relays to the analysis cluster ----------------------
        relay_in = capture.attach("raw", ConnectionMode.IN)
        relay_out = capture.attach("analysis!frames", ConnectionMode.OUT)
        for ts in range(FRAMES):
            _, frame = relay_in.get(ts, timeout=10.0)
            relay_in.consume(ts)
            relay_out.put(ts, frame)
        print(f"capture relayed {FRAMES} frames to the analysis cluster")

        # --- analysis processes and fans out ------------------------------
        work_in = analysis.attach("frames", ConnectionMode.IN)
        to_archive = analysis.attach("archive!vault", ConnectionMode.OUT)
        to_viewer = analysis.attach("capture!viewer", ConnectionMode.OUT)
        for ts in range(FRAMES):
            _, frame = work_in.get(ts, timeout=10.0)
            work_in.consume(ts)
            verdict = {"frame": frame["frame"],
                       "objects": frame["frame"] % 3}
            to_archive.put(ts, verdict)
            to_viewer.put(ts, verdict)
        print(f"analysis processed {FRAMES} frames; results fanned out "
              f"to archive (JDR bridge) and viewer (XDR bridge)")

        # --- consumers on the other clusters -------------------------------
        vault_in = archive.attach("vault", ConnectionMode.IN)
        viewer_in = capture.attach("viewer", ConnectionMode.IN)
        archived = 0
        viewed = 0
        for ts in range(FRAMES):
            _, verdict = vault_in.get(ts, timeout=10.0)
            vault_in.consume(ts)
            archived += 1
            _, verdict = viewer_in.get(ts, timeout=10.0)
            viewer_in.consume(ts)
            viewed += 1
        print(f"archive stored {archived} verdicts; "
              f"viewer displayed {viewed}")

        camera.close()
    finally:
        capture.shutdown()
        analysis.shutdown()
        archive.shutdown()


if __name__ == "__main__":
    main()
