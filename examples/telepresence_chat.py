#!/usr/bin/env python3
"""The paper's opening scenario: a telepresence chat room.

"John is sitting in his living room.  He opens a connection to a virtual
chat room and joins the discussion.  Coordinated video and audio sensors
capture John's appearance ... and speech in real-time ... used to
reconstruct a virtual avatar of John.  Each participant in the chat
session sees and hears the avatars for the other participants." (§1)

Each station produces video at 33 ms intervals and audio at 11 ms
intervals on a shared timeline; cluster-side avatar builders temporally
correlate the two modalities; every other station renders the avatar and
verifies that what it hears was captured at the same instant as what it
sees.

Run:  python examples/telepresence_chat.py [participants] [frames]
"""

import sys
import time

from repro.apps.telepresence import run_chat_room


def main() -> None:
    participants = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    print(f"opening a chat room for {participants} participants, "
          f"{frames} avatar frames each...")
    started = time.monotonic()
    result = run_chat_room(participants=participants, frames=frames,
                           image_size=2_000)
    elapsed = time.monotonic() - started

    print(f"finished in {elapsed:.2f}s")
    for report in result.stations:
        status = "ok" if report.clean else (report.errors or ["bad"])[0]
        print(
            f"  station {report.participant}: "
            f"{report.avatars_rendered} avatars rendered, "
            f"{report.correlated} audio/video-correlated, "
            f"{report.miscorrelated} miscorrelated, "
            f"{report.corrupt} corrupt [{status}]"
        )
    print("every avatar temporally correlated and verified:",
          result.all_verified)


if __name__ == "__main__":
    main()
