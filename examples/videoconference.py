#!/usr/bin/env python3
"""The paper's §4 application: a video conference over real TCP.

Structure (Figure 5):

* a cluster runtime with a mixer in address space ``N_M`` and a
  composite channel ``C0``;
* one end device per participant, joining over TCP, each running a
  producer thread (camera -> its channel ``C_j``) and a display thread
  (``C0`` -> screen);
* the mixer temporally correlates the participants' frames (same
  timestamp from every channel) and emits composites.

Every tile of every composite is verified against the deterministic
virtual-camera pattern, proving end-to-end integrity through marshalling,
surrogates, channels, and mixing.

Run:  python examples/videoconference.py [participants] [frames]
"""

import sys
import time

from repro.apps.videoconf import run_conference


def main() -> None:
    participants = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 12

    print(f"starting a {participants}-way conference, "
          f"{frames} frames per camera...")
    started = time.monotonic()
    result = run_conference(
        participants=participants,
        frames=frames,
        image_size=4_000,
        mixer_mode="multi",
    )
    elapsed = time.monotonic() - started

    print(f"finished in {elapsed:.2f}s")
    for outcome in result.participants:
        status = "ok" if not outcome.errors else outcome.errors[0]
        print(
            f"  participant {outcome.participant}: "
            f"{outcome.composites_received} composites, "
            f"{outcome.tiles_verified} tiles verified, "
            f"{outcome.corrupt_tiles} corrupt [{status}]"
        )
    print("all frames verified end-to-end:", result.all_verified)


if __name__ == "__main__":
    main()
