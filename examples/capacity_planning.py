#!/usr/bin/env python3
"""Capacity planning with the testbed simulator.

The evaluation's scalability question — "how many participants can a
conference sustain at a given image size before dropping below 10
frames/second?" (§5.2, Figure 15 / Table 1) — is exactly the question a
deployer asks.  This example turns the calibrated simulator into that
planning tool: it sweeps participant counts for a set of image sizes,
reports the sustainable maximum, and shows the egress-bandwidth budget
that explains each limit.

Run:  python examples/capacity_planning.py [fps_floor]
"""

import sys

from repro.simnet.params import DEFAULT_PARAMS
from repro.simnet.workload import simulate_videoconf


def max_participants(image_size: int, fps_floor: float,
                     ceiling: int = 12) -> tuple:
    """Largest K sustaining *fps_floor*, with its rate and bandwidth."""
    best = None
    for clients in range(2, ceiling + 1):
        result = simulate_videoconf("multi", clients, image_size,
                                    frames=60)
        if result.fps < fps_floor:
            break
        best = result
    return best


def main() -> None:
    fps_floor = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    egress = DEFAULT_PARAMS.app.egress_bandwidth / 1e6
    print(f"conference capacity at a {fps_floor:.0f} f/s floor "
          f"(cluster egress budget ~{egress:.0f} MB/s):\n")
    print(f"  {'image':>8} {'max K':>6} {'rate':>8} {'egress used':>12}")
    for image_size in (74_000, 89_000, 125_000, 145_000, 190_000,
                       250_000):
        best = max_participants(image_size, fps_floor)
        if best is None:
            print(f"  {image_size // 1000:>6}KB {'—':>6} "
                  f"{'<floor':>8} {'—':>12}")
            continue
        print(f"  {image_size // 1000:>6}KB {best.clients:>6} "
              f"{best.fps:>6.1f}fps "
              f"{best.delivered_bandwidth / 1e6:>9.1f} MB/s")
    print(
        "\nEach display receives a K-way composite (K x image), and the"
        "\ncluster node sends K of them per frame: demand grows as K^2 S F,"
        "\nwhich is why doubling the image size roughly halves the"
        "\nsustainable participant count — the paper's Table 1 argument."
    )


if __name__ == "__main__":
    main()
