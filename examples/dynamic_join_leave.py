#!/usr/bin/env python3
"""Dynamic start/stop: devices joining and leaving a live computation.

§2 requirement 5: "There should be a natural way for components of the
application to join and leave."  This example runs a cluster with a
long-lived aggregator, then has sensor devices join over TCP at
different times, publish a burst of readings, and leave — some cleanly
(BYE), one by simulated crash, which the lease reaper cleans up (our
extension closing the paper's stated failure-handling limitation, §3.3).

It also shows reclaim notifications reaching a device (§3.2.4).

Run:  python examples/dynamic_join_leave.py
"""

import time

from repro import ConnectionMode, NEWEST, Runtime, StampedeClient, \
    StampedeServer


def main() -> None:
    runtime = Runtime(name="dynamic", gc_interval=0.02)
    runtime.create_address_space("hub")
    server = StampedeServer(
        runtime, device_spaces=["hub"], lease_timeout=0.6
    ).start()
    host, port = server.address
    runtime.create_channel("readings", space="hub")

    aggregator = runtime.attach("readings", ConnectionMode.IN,
                                from_space="hub", owner="aggregator")

    def sensor_session(sensor_id: int, start_ts: int,
                       crash: bool = False) -> None:
        reclaims = []
        client = StampedeClient(
            host, port, client_name=f"sensor-{sensor_id}",
            heartbeat=0.2,
            on_reclaim=lambda name, ts: reclaims.append(ts),
        )
        print(f"sensor-{sensor_id} joined "
              f"(session {client.session_id}, space {client.space})")
        out = client.attach("readings", ConnectionMode.OUT)
        for offset in range(5):
            out.put(start_ts + offset,
                    {"sensor": sensor_id, "value": 20.0 + offset})
        if crash:
            # Hard failure: the device hangs — its TCP connection stays
            # up but heartbeats stop.  Without the lease extension this
            # is exactly the paper's "surrogate ... in an indeterminate
            # state" (§3.3); with it, the lease expires and the server
            # reaps the surrogate.
            client._heartbeat_stop.set()
            print(f"sensor-{sensor_id} HUNG (silent, no clean leave)")
        else:
            client.close()
            print(f"sensor-{sensor_id} left cleanly")

    # Devices join at different times, as participants do in telepresence.
    sensor_session(1, start_ts=0)
    sensor_session(2, start_ts=100)
    sensor_session(3, start_ts=200, crash=True)

    # The aggregator was attached throughout and sees every reading.
    total = 0
    while True:
        try:
            ts, reading = aggregator.get(NEWEST, block=False)
        except Exception:  # noqa: BLE001 - drained
            break
        total += 1
        aggregator.consume(ts)
    print(f"aggregator consumed {total} readings from 3 sensors")

    print("surrogates alive before reaping:", server.device_count)
    deadline = time.monotonic() + 3.0
    while server.device_count and time.monotonic() < deadline:
        time.sleep(0.05)
    print("surrogates alive after lease expiry:", server.device_count)

    server.close()
    runtime.shutdown()


if __name__ == "__main__":
    main()
