#!/usr/bin/env python3
"""Task-and-data parallelism: the Figure 3 tracker pipeline.

A splitter partitions each video frame into fragments (all carrying the
frame's timestamp) and puts them into a queue; a pool of tracker threads
each dequeue and analyze one fragment; a joiner stitches the per-fragment
results back into whole-frame analyses on an output channel.

The queue is what makes this data-parallel: every fragment is delivered
to exactly one tracker, so adding trackers divides the work without any
explicit assignment.

Run:  python examples/data_parallel_tracker.py
"""

import time

from repro.apps.frames import VirtualCamera
from repro.apps.trackers import TrackerFarm

FRAMES = 12
IMAGE_SIZE = 100_000


def detect_objects(index: int, fragment: bytes) -> dict:
    """A toy 'color tracker': histogram the fragment and report the
    dominant byte (compute-heavy enough to show parallel speedup)."""
    histogram = [0] * 256
    for byte in fragment:
        histogram[byte] += 1
    dominant = max(range(256), key=lambda value: histogram[value])
    return {"fragment": index, "dominant": dominant,
            "coverage": histogram[dominant] / max(1, len(fragment))}


def run(workers: int) -> float:
    camera = VirtualCamera(source=0, image_size=IMAGE_SIZE)
    frames = {ts: camera.capture(ts).pixels for ts in range(FRAMES)}
    farm = TrackerFarm(workers=workers, fragments=8,
                       analyzer=detect_objects)
    try:
        started = time.monotonic()
        joined = farm.process(frames)
        elapsed = time.monotonic() - started
        assert len(joined) == FRAMES
        assert all(len(t.results) == 8 for t in joined.values())
        return elapsed
    finally:
        farm.destroy()


def main() -> None:
    print(f"analyzing {FRAMES} frames of {IMAGE_SIZE // 1000} KB "
          f"in 8 fragments each\n")
    baseline = None
    for workers in (1, 2, 4, 8):
        elapsed = run(workers)
        if baseline is None:
            baseline = elapsed
        print(f"  {workers} tracker(s): {elapsed * 1000:7.1f} ms  "
              f"(speedup {baseline / elapsed:4.2f}x)")
    print("\n(Python threads share the GIL, so the speedup here shows "
          "pipeline overlap rather than raw CPU scaling; on the paper's "
          "SMP cluster the same structure scales with processors.)")


if __name__ == "__main__":
    main()
