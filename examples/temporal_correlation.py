#!/usr/bin/env python3
"""Temporal correlation across streams: the gesture + speech scenario.

§2 of the paper motivates temporal indexing with multimodal fusion: "a
gesture is a sequence of images, and speech is a sequence of audio
samples.  The import of a word would depend on the associated gesture."

This example runs two sensors at *different* rates — a 10 Hz camera and a
40 Hz microphone — into two channels indexed by a shared millisecond
timeline, plus a fusion analyzer that:

1. follows the slower stream with ``get(NEWEST)``,
2. random-accesses the audio channel at the *same timestamps* to fuse the
   modalities,
3. advances its interest floor with ``consume_until`` so the collector
   reclaims everything older — the "selective attention" of §3.1.

A second analyzer attaches with an attention *filter* and only ever sees
the frames it asked for.

Run:  python examples/temporal_correlation.py
"""

from repro import ConnectionMode, NEWEST, StampedeApp, spawn

CAMERA_PERIOD_MS = 100   # 10 Hz
AUDIO_PERIOD_MS = 25     # 40 Hz
DURATION_MS = 2_000


def main() -> None:
    with StampedeApp(name="fusion", address_spaces=["sensors",
                                                    "fusion"]) as app:
        app.create_channel("gesture", space="sensors")
        app.create_channel("speech", space="sensors")

        def camera() -> None:
            out = app.attach("gesture", ConnectionMode.OUT,
                             from_space="sensors")
            for t in range(0, DURATION_MS, CAMERA_PERIOD_MS):
                out.put(t, f"gesture@{t}ms")

        def microphone() -> None:
            out = app.attach("speech", ConnectionMode.OUT,
                             from_space="sensors")
            for t in range(0, DURATION_MS, AUDIO_PERIOD_MS):
                out.put(t, f"audio@{t}ms")

        spawn(camera, name="camera").join(timeout=10)
        spawn(microphone, name="microphone").join(timeout=10)

        # --- fusion: correlate the two modalities by timestamp ------------
        gestures = app.attach("gesture", ConnectionMode.IN,
                              from_space="fusion", owner="fuser")
        audio = app.attach("speech", ConnectionMode.IN,
                           from_space="fusion", owner="fuser")

        from repro import OLDEST

        fused = 0
        while True:
            try:
                # Follow the slower stream in time order: the oldest
                # gesture this analyzer has not yet processed.
                ts, gesture = gestures.get(OLDEST, block=False)
            except Exception:  # noqa: BLE001 - stream drained
                break
            # Random access: the audio sample captured at the SAME instant.
            _, sample = audio.get(ts, block=False)
            fused += 1
            if ts % 500 == 0:
                print(f"t={ts:4d}ms: fused [{gesture}] with [{sample}]")
            # Done with this instant and everything before it, on both
            # streams: the collector may reclaim it all (including the
            # three audio samples between consecutive gestures that the
            # analyzer skipped over).
            gestures.consume(ts)
            audio.consume(ts)
            gestures.consume_until(ts + 1)
            audio.consume_until(ts + 1)

        print(f"fused {fused} multimodal instants")

        # --- selective attention via filters -------------------------------
        app.create_channel("gesture2", space="sensors")
        out = app.attach("gesture2", ConnectionMode.OUT,
                         from_space="sensors")
        for t in range(0, 1000, 100):
            out.put(t, f"g@{t}")
        keyframes = app.attach(
            "gesture2", ConnectionMode.IN, from_space="fusion",
            attention_filter=lambda ts, value: ts % 300 == 0,
        )
        seen = []
        while True:
            try:
                ts, _ = keyframes.get(NEWEST, block=False)
            except Exception:  # noqa: BLE001 - nothing left it wants
                break
            seen.append(ts)
            keyframes.consume(ts)
        print("keyframe analyzer (filter: every 300ms) saw:",
              sorted(seen))

        gc_stats = app.runtime.lookup_container("gesture").stats()
        print(f"gesture channel: {gc_stats.puts} puts, "
              f"{gc_stats.reclaimed} reclaimed, "
              f"{gc_stats.live_items} still live")


if __name__ == "__main__":
    main()
