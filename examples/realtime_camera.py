#!/usr/bin/env python3
"""Real-time synchrony: pacing a camera at 30 frames/second.

The paper (§3.1): "a thread can declare real time 'ticks' at which it
will re-synchronize with real time, along with a tolerance and an
exception handler ...  a camera in a telepresence application can pace
itself to grab images and put them into its output channel at 30 frames
per second, using absolute frame numbers as timestamps."

This example paces a producer at 30 f/s for two seconds, injects an
artificial stall to force a slip, and shows the slip handler recovering
by skipping the missed frames — exactly how a live camera drops frames
rather than falling progressively behind.

Run:  python examples/realtime_camera.py
"""

import time

from repro import (
    Channel,
    ConnectionMode,
    NEWEST,
    RealtimeSynchronizer,
)

FPS = 30
DURATION_TICKS = 60  # two seconds


def main() -> None:
    channel = Channel("camera-feed", capacity=64)
    out = channel.attach(ConnectionMode.OUT, owner="camera")
    display = channel.attach(ConnectionMode.IN, owner="display")

    skipped_total = 0

    def on_slip(tick: int, lateness: float) -> None:
        nonlocal skipped_total
        skipped = sync.skip_to_current_tick()
        skipped_total += skipped
        print(f"  slip at tick {tick}: {lateness * 1000:.1f} ms late, "
              f"dropping {skipped} frame(s)")

    sync = RealtimeSynchronizer(
        tick_period=1.0 / FPS,
        tolerance=0.004,
        on_slip=on_slip,
    )
    sync.start()
    started = time.monotonic()

    frame_number = 0
    put_count = 0
    while frame_number < DURATION_TICKS:
        sync.synchronize(frame_number)
        out.put(frame_number, f"frame-{frame_number}")
        put_count += 1
        if frame_number == 20:
            # Simulate a processing hiccup (a GC pause, a busy CPU...).
            time.sleep(0.2)
        frame_number = sync.next_tick

    elapsed = time.monotonic() - started
    ts, latest = display.get(NEWEST)
    display.consume_until(ts + 1)

    print(f"\nproduced {put_count} frames in {elapsed:.2f}s "
          f"({put_count / elapsed:.1f} f/s achieved, target {FPS})")
    print(f"frames dropped to stay live: {skipped_total}")
    print(f"latest frame on the channel: t={ts} ({latest})")
    print(f"ticks waited on: {sync.waits}, slips: {sync.slips}")
    channel.destroy()


if __name__ == "__main__":
    main()
